type dataset = Lubm | Dbpedia

let dataset_name = function Lubm -> "LUBM" | Dbpedia -> "DBpedia"

type entry = { id : string; group : int; text : string }

let lubm_prefixes =
  "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
   PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"

let dbpedia_prefixes =
  "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
   PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
   PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
   PREFIX purl: <http://purl.org/dc/terms/>\n\
   PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n\
   PREFIX nsprov: <http://www.w3.org/ns/prov#>\n\
   PREFIX owl: <http://www.w3.org/2002/07/owl#>\n\
   PREFIX dbo: <http://dbpedia.org/ontology/>\n\
   PREFIX dbr: <http://dbpedia.org/resource/>\n\
   PREFIX dbp: <http://dbpedia.org/property/>\n\
   PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>\n\
   PREFIX georss: <http://www.georss.org/georss/>\n"

(* ---------------------------- LUBM ------------------------------------ *)

(* Listing 2 — verbatim. *)
let lubm_q1_1 =
  {|SELECT * WHERE {
  { ?v2 ub:headOf ?v1. } UNION { ?v2 ub:worksFor ?v1. }
  ?v2 ub:undergraduateDegreeFrom ?v3.
  ?v4 ub:doctoralDegreeFrom ?v3.
  ?v5 ub:publicationAuthor ?v2.
  { ?v6 ub:headOf ?v1. } UNION { ?v6 ub:worksFor ?v1. }
  { ?v2 ub:headOf ?v7. } UNION { ?v2 ub:worksFor ?v7. }
  <http://www.Department0.University0.edu/UndergraduateStudent91> ub:memberOf ?v1.
  ?v7 ub:name ?v8. }|}

(* Listing 3 is illegible in the source; reconstructed as the "special
   case" Section 7.1 describes: a single low-selectivity BGP followed by
   OPTIONALs (type O, large result, TT ≈ CP). *)
let lubm_q1_2 =
  {|SELECT * WHERE {
  ?v1 ub:memberOf ?v2.
  OPTIONAL { ?v1 ub:emailAddress ?v3. }
  OPTIONAL { ?v1 ub:advisor ?v4. }
}|}

(* Listing 4 — verbatim modulo the one OCR-lost predicate on line 2
   (restored as takesCourse: ?v1 must be a course for
   teachingAssistantOf). *)
let lubm_q1_3 =
  {|SELECT * WHERE {
  <http://www.Department1.University0.edu/UndergraduateStudent363> ub:takesCourse ?v1.
  OPTIONAL { ?v2 ub:teachingAssistantOf ?v1.
    OPTIONAL { ?v2 ub:memberOf ?v3.
      ?v4 ub:subOrganizationOf ?v3.
      ?v4 ub:subOrganizationOf ?v5.
      ?v4 rdf:type ?v6.
      OPTIONAL { ?v5 ub:subOrganizationOf ?v7. } } } }|}

(* Listing 5 — verbatim. *)
let lubm_q1_4 =
  {|SELECT * WHERE {
  ?v1 ub:emailAddress "UndergraduateStudent309@Department12.University0.edu".
  OPTIONAL { ?v1 ub:memberOf ?v2. ?v2 ub:name ?v3.
    OPTIONAL { ?v5 ub:publicationAuthor ?v4. ?v4 ub:worksFor ?v2.
      OPTIONAL { ?v6 ub:publicationAuthor ?v4. } } } }|}

(* Listing 6 is illegible; reconstructed per Section 7.1: UO query where
   TT and CP are jointly effective — a selective department head anchors
   candidate pruning while the UNION admits a merge. *)
let lubm_q1_5 =
  {|SELECT * WHERE {
  ?v1 ub:headOf ?v2.
  { ?v1 ub:undergraduateDegreeFrom ?v3. } UNION { ?v1 ub:mastersDegreeFrom ?v3. }
  OPTIONAL { ?v4 ub:advisor ?v1. ?v4 ub:memberOf ?v2.
    OPTIONAL { ?v4 ub:takesCourse ?v5. ?v1 ub:teacherOf ?v5. } } }|}

(* Listing 7 is illegible; reconstructed per Section 7.1: a
   high-selectivity BGP (lines 1-2) and a relatively low-selectivity BGP,
   then a mergeable UNION and OPTIONALs that candidate pruning
   accelerates. *)
let lubm_q1_6 =
  {|SELECT * WHERE {
  ?v1 ub:worksFor <http://www.Department0.University0.edu>.
  ?v2 ub:publicationAuthor ?v1.
  { ?v1 ub:undergraduateDegreeFrom ?v3. } UNION { ?v1 ub:doctoralDegreeFrom ?v3. }
  OPTIONAL { ?v1 ub:teacherOf ?v4.
    OPTIONAL { ?v5 ub:takesCourse ?v4. ?v5 ub:emailAddress ?v6. } }
  OPTIONAL { ?v2 ub:name ?v7. } }|}

(* Listing 8 is partially illegible; reconstructed in the q2.1-q2.3
   family: nested group graph patterns, each a low-selectivity BGP plus an
   OPTIONAL with a single low-selectivity BGP child (LBR's GoSN shape). *)
let lubm_q2_1 =
  {|SELECT * WHERE {
  { ?x rdf:type ub:GraduateStudent. ?x ub:memberOf ?dept.
    OPTIONAL { ?x ub:emailAddress ?email. ?x ub:telephone ?tel. } }
  { ?dept ub:subOrganizationOf ?univ.
    OPTIONAL { ?univ ub:name ?uname. } }
  { ?x ub:advisor ?prof. ?prof ub:worksFor ?dept.
    OPTIONAL { ?prof ub:researchInterest ?ri. } } }|}

(* Listing 9 — verbatim. *)
let lubm_q2_2 =
  {|SELECT * WHERE {
  { ?pub rdf:type ub:Publication. ?pub ub:publicationAuthor ?st.
    ?pub ub:publicationAuthor ?prof.
    OPTIONAL { ?st ub:emailAddress ?ste. ?st ub:telephone ?sttel. } }
  { ?st ub:undergraduateDegreeFrom ?univ. ?dept ub:subOrganizationOf ?univ.
    OPTIONAL { ?head ub:headOf ?dept. ?others ub:worksFor ?dept. } }
  { ?st ub:memberOf ?dept. ?prof ub:worksFor ?dept.
    OPTIONAL { ?prof ub:doctoralDegreeFrom ?univ1.
      ?prof ub:researchInterest ?resint1. } } }|}

(* Listing 10 is illegible; reconstructed in the same family. *)
let lubm_q2_3 =
  {|SELECT * WHERE {
  { ?pub ub:publicationAuthor ?st. ?st ub:memberOf ?dept.
    OPTIONAL { ?pub ub:name ?pname. } }
  { ?dept ub:subOrganizationOf ?univ.
    OPTIONAL { ?dept ub:name ?dname. } } }|}

(* Listings 11-13 — verbatim. *)
let lubm_q2_4 =
  {|SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University0.edu>.
  ?x rdf:type ub:FullProfessor.
  OPTIONAL { ?y ub:advisor ?x. ?x ub:teacherOf ?z. ?y ub:takesCourse ?z. } }|}

let lubm_q2_5 =
  {|SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University12.edu>.
  ?x rdf:type ub:FullProfessor.
  OPTIONAL { ?y ub:advisor ?x. ?x ub:teacherOf ?z. ?y ub:takesCourse ?z. } }|}

let lubm_q2_6 =
  {|SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University12.edu>.
  ?x rdf:type ub:FullProfessor.
  OPTIONAL { ?x ub:emailAddress ?y1. ?x ub:telephone ?y2. ?x ub:name ?y3. } }|}

(* --------------------------- DBpedia ---------------------------------- *)

(* Listing 15 — verbatim. *)
let dbpedia_q1_1 =
  {|SELECT * WHERE {
  { ?v3 rdfs:label ?v7. } UNION { ?v3 foaf:name ?v7. }
  { ?v1 purl:subject ?v3. } UNION { ?v3 skos:subject ?v1. }
  ?v3 rdfs:label ?v4.
  ?v5 nsprov:wasDerivedFrom ?v2.
  ?v1 owl:sameAs ?v6.
  ?v1 dbo:wikiPageWikiLink dbr:Economic_system.
  ?v1 nsprov:wasDerivedFrom ?v2. }|}

(* Listing 16 — verbatim. *)
let dbpedia_q1_2 =
  {|SELECT * WHERE {
  { ?v3 purl:subject ?v5. OPTIONAL { ?v5 rdfs:label ?v6. } }
  UNION
  { ?v5 skos:subject ?v3. OPTIONAL { ?v5 foaf:name ?v6. } }
  ?v1 dbo:wikiPageWikiLink dbr:Economic_system.
  ?v1 nsprov:wasDerivedFrom ?v2.
  ?v3 dbo:wikiPageWikiLink ?v4.
  ?v3 nsprov:wasDerivedFrom ?v2. }|}

(* Listing 17 — verbatim. *)
let dbpedia_q1_3 =
  {|SELECT * WHERE {
  dbr:Air_masses foaf:isPrimaryTopicOf ?v1.
  ?v2 foaf:isPrimaryTopicOf ?v1.
  OPTIONAL {
    ?v2 dbo:wikiPageRedirects ?v3. ?v4 foaf:primaryTopic ?v2.
    OPTIONAL {
      ?v5 dbo:wikiPageWikiLink ?v3.
      OPTIONAL { ?v6 dbo:wikiPageRedirects ?v5.
        OPTIONAL { ?v6 dbo:wikiPageWikiLink ?v7. } } } } }|}

(* Listing 18 is partially illegible; reconstructed per Section 7.1's
   CP-effective shape: selective anchor, nested low-selectivity
   OPTIONALs. *)
let dbpedia_q1_4 =
  {|SELECT * WHERE {
  ?v1 dbo:wikiPageWikiLink dbr:Air_masses.
  OPTIONAL { ?v1 foaf:name ?v2.
    OPTIONAL { ?v5 dbo:wikiPageWikiLink ?v1.
      OPTIONAL { ?v5 rdfs:comment ?v6.
        OPTIONAL { ?v5 owl:sameAs ?v7. } } } } }|}

(* Listing 19 is illegible; reconstructed per Section 7.1: UO with a
   selective anchor, a mergeable UNION and nested OPTIONALs. *)
let dbpedia_q1_5 =
  {|SELECT * WHERE {
  ?v1 rdf:type dbo:PopulatedPlace.
  ?v1 dbo:wikiPageWikiLink dbr:Economic_system.
  { ?v1 purl:subject ?v2. } UNION { ?v1 skos:subject ?v2. }
  ?v2 rdfs:label ?v5.
  OPTIONAL { ?v3 dbo:wikiPageWikiLink ?v1.
    OPTIONAL { ?v3 rdfs:label ?v4. } } }|}

(* Listing 20 is illegible; reconstructed per Section 7.1: UO where TT
   and CP are jointly effective. *)
let dbpedia_q1_6 =
  {|SELECT * WHERE {
  ?v0 rdf:type dbo:Company.
  ?v0 dbo:wikiPageWikiLink dbr:Economic_system.
  { ?v0 rdfs:label ?v1. } UNION { ?v0 foaf:name ?v1. }
  { ?v0 purl:subject ?v2. } UNION { ?v0 skos:subject ?v2. }
  OPTIONAL { ?v0 dbp:location ?v3. ?v3 rdfs:label ?v4. }
  OPTIONAL { ?v5 dbp:manufacturer ?v0.
    OPTIONAL { ?v5 rdfs:label ?v6. } } }|}

(* Listing 21 — verbatim. *)
let dbpedia_q2_1 =
  {|SELECT * WHERE {
  { ?v6 a dbo:PopulatedPlace. ?v6 dbo:abstract ?v1.
    ?v6 rdfs:label ?v2. ?v6 geo:lat ?v3. ?v6 geo:long ?v4.
    OPTIONAL { ?v6 foaf:depiction ?v8. } }
  OPTIONAL { ?v6 foaf:homepage ?v10. }
  OPTIONAL { ?v6 dbo:populationTotal ?v12. }
  OPTIONAL { ?v6 dbo:thumbnail ?v14. } }|}

(* Listing 22 is partially illegible; reconstructed in the q2.1-q2.3
   family (low-selectivity BGPs with OPTIONAL attribute fetches). *)
let dbpedia_q2_2 =
  {|SELECT * WHERE {
  ?v0 rdfs:label ?v1. ?v0 rdf:type dbo:Person.
  OPTIONAL { ?v0 foaf:name ?v2. ?v0 foaf:homepage ?v3. } }|}

(* Listing 23 — verbatim. *)
let dbpedia_q2_3 =
  {|SELECT * WHERE {
  ?v5 dbo:thumbnail ?v4. ?v5 rdf:type dbo:Person. ?v5 rdfs:label ?v.
  ?v5 foaf:homepage ?v8.
  OPTIONAL { ?v5 foaf:homepage ?v10. } }|}

(* Listing 24 is illegible; reconstructed per Section 7.2: simple, a
   high-selectivity BGP followed by an OPTIONAL. *)
let dbpedia_q2_4 =
  {|SELECT * WHERE {
  ?v0 dbo:wikiPageWikiLink dbr:Economic_system. ?v0 rdf:type dbo:Company.
  OPTIONAL { ?v0 dbp:industry ?v1. ?v0 dbp:location ?v2. } }|}

(* Listing 25 — verbatim. *)
let dbpedia_q2_5 =
  {|SELECT * WHERE {
  ?v4 skos:subject ?v. ?v4 foaf:name ?v6.
  OPTIONAL { ?v4 rdfs:comment ?v8. } }|}

(* Listing 26 — verbatim. *)
let dbpedia_q2_6 =
  {|SELECT * WHERE {
  ?v0 rdfs:comment ?v1. ?v0 foaf:page ?v.
  OPTIONAL { ?v0 skos:subject ?v6. }
  OPTIONAL { ?v0 dbp:industry ?v5. }
  OPTIONAL { ?v0 dbp:location ?v2. }
  OPTIONAL { ?v0 dbp:locationCountry ?v3. }
  OPTIONAL { ?v0 dbp:locationCity ?v9. ?a dbp:manufacturer ?v0. }
  OPTIONAL { ?v0 dbp:products ?v11. ?b dbp:model ?v0. }
  OPTIONAL { ?v0 georss:point ?v10. }
  OPTIONAL { ?v0 rdf:type ?v7. } }|}

let make prefixes id group body = { id; group; text = prefixes ^ body }

let lubm_entries =
  [
    make lubm_prefixes "q1.1" 1 lubm_q1_1;
    make lubm_prefixes "q1.2" 1 lubm_q1_2;
    make lubm_prefixes "q1.3" 1 lubm_q1_3;
    make lubm_prefixes "q1.4" 1 lubm_q1_4;
    make lubm_prefixes "q1.5" 1 lubm_q1_5;
    make lubm_prefixes "q1.6" 1 lubm_q1_6;
    make lubm_prefixes "q2.1" 2 lubm_q2_1;
    make lubm_prefixes "q2.2" 2 lubm_q2_2;
    make lubm_prefixes "q2.3" 2 lubm_q2_3;
    make lubm_prefixes "q2.4" 2 lubm_q2_4;
    make lubm_prefixes "q2.5" 2 lubm_q2_5;
    make lubm_prefixes "q2.6" 2 lubm_q2_6;
  ]

let dbpedia_entries =
  [
    make dbpedia_prefixes "q1.1" 1 dbpedia_q1_1;
    make dbpedia_prefixes "q1.2" 1 dbpedia_q1_2;
    make dbpedia_prefixes "q1.3" 1 dbpedia_q1_3;
    make dbpedia_prefixes "q1.4" 1 dbpedia_q1_4;
    make dbpedia_prefixes "q1.5" 1 dbpedia_q1_5;
    make dbpedia_prefixes "q1.6" 1 dbpedia_q1_6;
    make dbpedia_prefixes "q2.1" 2 dbpedia_q2_1;
    make dbpedia_prefixes "q2.2" 2 dbpedia_q2_2;
    make dbpedia_prefixes "q2.3" 2 dbpedia_q2_3;
    make dbpedia_prefixes "q2.4" 2 dbpedia_q2_4;
    make dbpedia_prefixes "q2.5" 2 dbpedia_q2_5;
    make dbpedia_prefixes "q2.6" 2 dbpedia_q2_6;
  ]

let all = function Lubm -> lubm_entries | Dbpedia -> dbpedia_entries

let get ds id =
  match List.find_opt (fun entry -> entry.id = id) (all ds) with
  | Some entry -> entry
  | None -> raise Not_found

let group1 ds = List.filter (fun entry -> entry.group = 1) (all ds)
let group2 ds = List.filter (fun entry -> entry.group = 2) (all ds)
