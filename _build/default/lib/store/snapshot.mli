(** Binary store snapshots: a versioned, checksummed on-disk format for a
    dictionary-encoded store, so a dataset is loaded back without
    re-parsing N-Triples (the indexes are rebuilt on load; only the
    dictionary and the triple table are persisted).

    Format (all integers 4-byte big-endian):
    {v
    magic "SPUO" | version | term count | terms | triple count
    | s p o ids ... | checksum
    v}
    Terms are serialized as a kind byte plus length-prefixed strings. The
    checksum is a simple additive digest over the payload; {!load} rejects
    files whose magic, version or checksum do not match. *)

exception Corrupt of string

(** [save store path] writes a snapshot. *)
val save : Triple_store.t -> string -> unit

(** [load path] reads a snapshot back. Raises {!Corrupt} on a malformed or
    truncated file. *)
val load : string -> Triple_store.t
