lib/store/index.ml: Array Fun Int
