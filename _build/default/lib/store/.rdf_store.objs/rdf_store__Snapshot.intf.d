lib/store/snapshot.mli: Triple_store
