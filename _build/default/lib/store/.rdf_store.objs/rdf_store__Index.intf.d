lib/store/index.mli:
