lib/store/triple_store.mli: Dictionary Index Rdf Seq
