lib/store/dictionary.ml: Array Hashtbl Printf Rdf
