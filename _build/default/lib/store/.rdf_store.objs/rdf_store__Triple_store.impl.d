lib/store/triple_store.ml: Array Dictionary Index Int List Rdf Seq
