lib/store/snapshot.ml: Array Char Dictionary Fun Printf Rdf String Triple_store
