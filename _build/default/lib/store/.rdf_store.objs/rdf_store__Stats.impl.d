lib/store/stats.ml: Dictionary Format Hashtbl List Option Rdf Triple_store
