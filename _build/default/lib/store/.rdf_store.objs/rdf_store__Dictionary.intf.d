lib/store/dictionary.mli: Rdf
