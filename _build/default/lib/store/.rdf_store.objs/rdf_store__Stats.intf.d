lib/store/stats.mli: Format Triple_store
