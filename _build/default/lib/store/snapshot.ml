exception Corrupt of string

let magic = "SPUO"
let version = 1

(* A cheap rolling additive digest, enough to catch truncation and bit
   rot (this is an integrity check, not an authenticity one). *)
module Digest_acc = struct
  type t = { mutable value : int }

  let create () = { value = 0x1505 }

  let add_int acc n =
    acc.value <- ((acc.value * 33) + n) land 0x3FFFFFFF

  let add_string acc s =
    String.iter (fun c -> add_int acc (Char.code c)) s

  let value acc = acc.value
end

(* --- writing ----------------------------------------------------------- *)

let write_int oc digest n =
  if n < 0 then raise (Corrupt "negative integer during save");
  output_binary_int oc n;
  Digest_acc.add_int digest n

let write_string oc digest s =
  write_int oc digest (String.length s);
  output_string oc s;
  Digest_acc.add_string digest s

let term_tag = function
  | Rdf.Term.Iri _ -> 0
  | Rdf.Term.Bnode _ -> 1
  | Rdf.Term.Literal { kind = Rdf.Term.Plain; _ } -> 2
  | Rdf.Term.Literal { kind = Rdf.Term.Lang _; _ } -> 3
  | Rdf.Term.Literal { kind = Rdf.Term.Typed _; _ } -> 4

let write_term oc digest term =
  write_int oc digest (term_tag term);
  match term with
  | Rdf.Term.Iri s | Rdf.Term.Bnode s -> write_string oc digest s
  | Rdf.Term.Literal { value; kind = Rdf.Term.Plain } ->
      write_string oc digest value
  | Rdf.Term.Literal { value; kind = Rdf.Term.Lang lang } ->
      write_string oc digest value;
      write_string oc digest lang
  | Rdf.Term.Literal { value; kind = Rdf.Term.Typed dt } ->
      write_string oc digest value;
      write_string oc digest dt

let save store path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let digest = Digest_acc.create () in
      output_string oc magic;
      output_binary_int oc version;
      let dict = Triple_store.dictionary store in
      write_int oc digest (Dictionary.size dict);
      Dictionary.iter dict ~f:(fun _ term -> write_term oc digest term);
      write_int oc digest (Triple_store.size store);
      Triple_store.iter_all store ~f:(fun ~s ~p ~o ->
          write_int oc digest s;
          write_int oc digest p;
          write_int oc digest o);
      output_binary_int oc (Digest_acc.value digest))

(* --- reading ----------------------------------------------------------- *)

let read_int ic digest =
  match input_binary_int ic with
  | n ->
      Digest_acc.add_int digest n;
      n
  | exception End_of_file -> raise (Corrupt "truncated file")

let read_string ic digest =
  let n = read_int ic digest in
  if n < 0 || n > 100_000_000 then raise (Corrupt "implausible string length");
  match really_input_string ic n with
  | s ->
      Digest_acc.add_string digest s;
      s
  | exception End_of_file -> raise (Corrupt "truncated string")

let read_term ic digest =
  match read_int ic digest with
  | 0 -> Rdf.Term.iri (read_string ic digest)
  | 1 -> Rdf.Term.bnode (read_string ic digest)
  | 2 -> Rdf.Term.literal (read_string ic digest)
  | 3 ->
      let value = read_string ic digest in
      Rdf.Term.lang_literal value ~lang:(read_string ic digest)
  | 4 ->
      let value = read_string ic digest in
      Rdf.Term.typed_literal value ~datatype:(read_string ic digest)
  | tag -> raise (Corrupt (Printf.sprintf "unknown term tag %d" tag))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let file_magic =
        try really_input_string ic 4
        with End_of_file -> raise (Corrupt "missing magic")
      in
      if file_magic <> magic then raise (Corrupt "bad magic");
      let file_version =
        try input_binary_int ic with End_of_file -> raise (Corrupt "no version")
      in
      if file_version <> version then
        raise (Corrupt (Printf.sprintf "unsupported version %d" file_version));
      let digest = Digest_acc.create () in
      let nterms = read_int ic digest in
      if nterms < 0 then raise (Corrupt "negative term count");
      let dict = Dictionary.create ~initial_capacity:(max 16 nterms) () in
      for expected = 0 to nterms - 1 do
        let id = Dictionary.encode dict (read_term ic digest) in
        if id <> expected then raise (Corrupt "duplicate term in dictionary")
      done;
      let ntriples = read_int ic digest in
      if ntriples < 0 then raise (Corrupt "negative triple count");
      let rows =
        Array.init ntriples (fun _ ->
            let s = read_int ic digest in
            let p = read_int ic digest in
            let o = read_int ic digest in
            if s >= nterms || p >= nterms || o >= nterms then
              raise (Corrupt "triple id out of dictionary range");
            (s, p, o))
      in
      let stored_checksum =
        try input_binary_int ic
        with End_of_file -> raise (Corrupt "missing checksum")
      in
      if stored_checksum <> Digest_acc.value digest then
        raise (Corrupt "checksum mismatch");
      Triple_store.of_encoded_rows dict rows)
