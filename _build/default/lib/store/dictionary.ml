type t = {
  mutable terms : Rdf.Term.t array;
  mutable count : int;
  by_term : (Rdf.Term.t, int) Hashtbl.t;
}

let placeholder = Rdf.Term.Iri ""

let create ?(initial_capacity = 1024) () =
  {
    terms = Array.make (max 1 initial_capacity) placeholder;
    count = 0;
    by_term = Hashtbl.create (max 1 initial_capacity);
  }

let grow dict =
  let fresh = Array.make (2 * Array.length dict.terms) placeholder in
  Array.blit dict.terms 0 fresh 0 dict.count;
  dict.terms <- fresh

let encode dict term =
  match Hashtbl.find_opt dict.by_term term with
  | Some id -> id
  | None ->
      if dict.count = Array.length dict.terms then grow dict;
      let id = dict.count in
      dict.terms.(id) <- term;
      dict.count <- id + 1;
      Hashtbl.add dict.by_term term id;
      id

let find dict term = Hashtbl.find_opt dict.by_term term

let decode dict id =
  if id < 0 || id >= dict.count then
    invalid_arg (Printf.sprintf "Dictionary.decode: id %d out of range" id);
  dict.terms.(id)

let size dict = dict.count

let iter dict ~f =
  for id = 0 to dict.count - 1 do
    f id dict.terms.(id)
  done
