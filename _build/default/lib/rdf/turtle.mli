(** A Turtle subset parser, sufficient for hand-written example data and
    tests.

    Supported: [@prefix] directives, full IRIs, prefixed names, [a] for
    [rdf:type], predicate lists ([;]), object lists ([,]), blank node labels
    ([_:x]), string literals with language tags and datatypes, bare integer /
    decimal / boolean abbreviations, [#] comments.

    Not supported (out of scope for this reproduction): anonymous blank-node
    property lists [\[...\]], RDF collections [(...)] and multi-line
    ["""..."""] strings. *)

exception Parse_error of { line : int; message : string }

(** [parse_string ?env s] parses a Turtle document. Prefixes declared in the
    document are added to a copy of [env] (default: the builtin defaults of
    {!Namespace.with_defaults}). Returns the triples in document order. *)
val parse_string : ?env:Namespace.t -> string -> Triple.t list

val parse_file : ?env:Namespace.t -> string -> Triple.t list
