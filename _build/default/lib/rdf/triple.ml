type t = { s : Term.t; p : Term.t; o : Term.t }

let make s p o = { s; p; o }

let is_valid { s; p; o = _ } =
  (Term.is_iri s || Term.is_bnode s) && Term.is_iri p

let compare t1 t2 =
  let c = Term.compare t1.s t2.s in
  if c <> 0 then c
  else
    let c = Term.compare t1.p t2.p in
    if c <> 0 then c else Term.compare t1.o t2.o

let equal t1 t2 = compare t1 t2 = 0

type position = Subject | Predicate | Object

let at t = function Subject -> t.s | Predicate -> t.p | Object -> t.o

let to_ntriples { s; p; o } =
  Printf.sprintf "%s %s %s ." (Term.to_ntriples s) (Term.to_ntriples p)
    (Term.to_ntriples o)

let pp fmt t = Format.pp_print_string fmt (to_ntriples t)
