exception Parse_error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* A tiny cursor over a single line of input. *)
type cursor = { src : string; mutable pos : int; line : int }

let peek cur =
  if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.src in
  while cur.pos < n && (cur.src.[cur.pos] = ' ' || cur.src.[cur.pos] = '\t') do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> error cur.line "expected %C but found %C at column %d" c c' cur.pos
  | None -> error cur.line "expected %C but reached end of line" c

(* Reads up to (but not including) the unescaped terminator [stop]. *)
let read_until cur stop =
  let buf = Buffer.create 32 in
  let rec go () =
    match peek cur with
    | None -> error cur.line "unterminated token (expected %C)" stop
    | Some c when c = stop -> advance cur
    | Some '\\' ->
        Buffer.add_char buf '\\';
        advance cur;
        (match peek cur with
        | Some c ->
            Buffer.add_char buf c;
            advance cur
        | None -> error cur.line "dangling backslash");
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let read_bnode_label cur =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | Some c when is_name_char c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  if Buffer.length buf = 0 then error cur.line "empty blank node label";
  Buffer.contents buf

let read_lang_tag cur =
  let buf = Buffer.create 8 in
  let rec go () =
    match peek cur with
    | Some c
      when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9') || c = '-' ->
        Buffer.add_char buf c;
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  if Buffer.length buf = 0 then error cur.line "empty language tag";
  Buffer.contents buf

let read_term cur =
  skip_ws cur;
  match peek cur with
  | Some '<' ->
      advance cur;
      Term.Iri (read_until cur '>')
  | Some '_' ->
      advance cur;
      expect cur ':';
      Term.Bnode (read_bnode_label cur)
  | Some '"' -> (
      advance cur;
      let raw = read_until cur '"' in
      let value = Term.unescape_string raw in
      match peek cur with
      | Some '@' ->
          advance cur;
          Term.lang_literal value ~lang:(read_lang_tag cur)
      | Some '^' ->
          advance cur;
          expect cur '^';
          expect cur '<';
          Term.typed_literal value ~datatype:(read_until cur '>')
      | _ -> Term.literal value)
  | Some c -> error cur.line "unexpected character %C at column %d" c cur.pos
  | None -> error cur.line "unexpected end of line"

let parse_line ?(line = 0) s =
  let cur = { src = s; pos = 0; line } in
  skip_ws cur;
  match peek cur with
  | None -> None
  | Some '#' -> None
  | Some _ ->
      let s_term = read_term cur in
      let p_term = read_term cur in
      let o_term = read_term cur in
      skip_ws cur;
      expect cur '.';
      skip_ws cur;
      (match peek cur with
      | None | Some '#' -> ()
      | Some c -> error line "trailing garbage %C after '.'" c);
      let triple = Triple.make s_term p_term o_term in
      if not (Triple.is_valid triple) then
        error line "invalid triple: %s" (Triple.to_ntriples triple);
      Some triple

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let _, triples =
    List.fold_left
      (fun (lineno, acc) line_src ->
        match parse_line ~line:lineno line_src with
        | None -> (lineno + 1, acc)
        | Some t -> (lineno + 1, t :: acc))
      (1, []) lines
  in
  List.rev triples

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some line_src -> (
            match parse_line ~line:lineno line_src with
            | None -> go (lineno + 1) acc
            | Some t -> go (lineno + 1) (t :: acc))
      in
      go 1 [])

let to_string triples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf (Triple.to_ntriples t);
      Buffer.add_char buf '\n')
    triples;
  Buffer.contents buf

let write_file path triples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string triples))
