(** RDF terms: IRIs, blank nodes, and literals (plain, language-tagged or
    datatyped), per Definition 1 of the paper.

    Terms are immutable values with a total order, so they can serve as keys
    in maps and be sorted deterministically in dictionaries and test
    output. *)

type literal_kind =
  | Plain  (** a simple literal, e.g. ["abc"] *)
  | Lang of string  (** language-tagged, e.g. ["abc"@en] *)
  | Typed of string  (** datatyped; the payload is the datatype IRI *)

type literal = { value : string; kind : literal_kind }

type t =
  | Iri of string
  | Bnode of string  (** blank-node label, without the [_:] prefix *)
  | Literal of literal

(** {1 Constructors} *)

val iri : string -> t
val bnode : string -> t
val literal : string -> t
val lang_literal : string -> lang:string -> t
val typed_literal : string -> datatype:string -> t

(** [int_literal n] is [n] typed as [xsd:integer]. *)
val int_literal : int -> t

(** [date_literal s] is [s] typed as [xsd:date]. *)
val date_literal : string -> t

(** {1 Classification} *)

val is_iri : t -> bool
val is_bnode : t -> bool
val is_literal : t -> bool

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {1 Printing} *)

(** [to_ntriples t] renders [t] in N-Triples concrete syntax, with all string
    escaping applied (e.g. [<http://a>], [_:b0], ["x"@en],
    ["3"^^<http://www.w3.org/2001/XMLSchema#integer>]). *)
val to_ntriples : t -> string

val pp : Format.formatter -> t -> unit

(** {1 String escaping} *)

(** [escape_string s] escapes [s] for inclusion between double quotes in
    N-Triples / Turtle output. *)
val escape_string : string -> string

(** [unescape_string s] undoes {!escape_string}. Raises [Failure] on a
    malformed escape sequence. *)
val unescape_string : string -> string

(** {1 Well-known datatype IRIs} *)

val xsd_integer : string
val xsd_string : string
val xsd_date : string
val xsd_double : string
val xsd_boolean : string
