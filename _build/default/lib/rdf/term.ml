type literal_kind = Plain | Lang of string | Typed of string

type literal = { value : string; kind : literal_kind }

type t = Iri of string | Bnode of string | Literal of literal

let xsd = "http://www.w3.org/2001/XMLSchema#"
let xsd_integer = xsd ^ "integer"
let xsd_string = xsd ^ "string"
let xsd_date = xsd ^ "date"
let xsd_double = xsd ^ "double"
let xsd_boolean = xsd ^ "boolean"

let iri s = Iri s
let bnode s = Bnode s
let literal v = Literal { value = v; kind = Plain }
let lang_literal v ~lang = Literal { value = v; kind = Lang lang }
let typed_literal v ~datatype = Literal { value = v; kind = Typed datatype }
let int_literal n = typed_literal (string_of_int n) ~datatype:xsd_integer
let date_literal s = typed_literal s ~datatype:xsd_date

let is_iri = function Iri _ -> true | Bnode _ | Literal _ -> false
let is_bnode = function Bnode _ -> true | Iri _ | Literal _ -> false
let is_literal = function Literal _ -> true | Iri _ | Bnode _ -> false

let kind_rank = function Plain -> 0 | Lang _ -> 1 | Typed _ -> 2

let compare_literal l1 l2 =
  let c = String.compare l1.value l2.value in
  if c <> 0 then c
  else
    match (l1.kind, l2.kind) with
    | Plain, Plain -> 0
    | Lang a, Lang b -> String.compare a b
    | Typed a, Typed b -> String.compare a b
    | k1, k2 -> Int.compare (kind_rank k1) (kind_rank k2)

let compare t1 t2 =
  match (t1, t2) with
  | Iri a, Iri b -> String.compare a b
  | Bnode a, Bnode b -> String.compare a b
  | Literal a, Literal b -> compare_literal a b
  | Iri _, (Bnode _ | Literal _) -> -1
  | Bnode _, Iri _ -> 1
  | Bnode _, Literal _ -> -1
  | Literal _, (Iri _ | Bnode _) -> 1

let equal t1 t2 = compare t1 t2 = 0

let hash = Hashtbl.hash

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_string s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '\\' then begin
      if i + 1 >= n then failwith "unescape_string: dangling backslash";
      (match s.[i + 1] with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' | 'U' ->
          (* Keep \u escapes verbatim: the store treats terms opaquely. *)
          Buffer.add_char buf '\\';
          Buffer.add_char buf s.[i + 1]
      | c -> failwith (Printf.sprintf "unescape_string: bad escape \\%c" c));
      go (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let to_ntriples = function
  | Iri s -> "<" ^ s ^ ">"
  | Bnode s -> "_:" ^ s
  | Literal { value; kind } -> (
      let quoted = "\"" ^ escape_string value ^ "\"" in
      match kind with
      | Plain -> quoted
      | Lang l -> quoted ^ "@" ^ l
      | Typed d -> quoted ^ "^^<" ^ d ^ ">")

let pp fmt t = Format.pp_print_string fmt (to_ntriples t)
