lib/rdf/turtle.mli: Namespace Triple
