lib/rdf/turtle.ml: Buffer Fun In_channel List Namespace Printf String Term Triple
