lib/rdf/namespace.mli:
