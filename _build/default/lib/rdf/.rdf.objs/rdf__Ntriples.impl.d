lib/rdf/ntriples.ml: Buffer Fun In_channel List Printf String Term Triple
