lib/rdf/namespace.ml: Hashtbl List Printf String
