lib/rdf/term.ml: Buffer Format Hashtbl Int Printf String
