lib/rdf/ntriples.mli: Triple
