lib/rdf/triple.ml: Format Printf Term
