(** Prefix environments and the vocabularies used throughout the paper's
    queries (LUBM's [ub:] and the DBpedia namespaces). *)

type t
(** A mutable prefix environment mapping prefix labels (without the colon)
    to namespace IRIs. *)

val create : unit -> t

(** [with_defaults ()] is an environment preloaded with every prefix used by
    the paper's appendix queries ([ub], [rdf], [rdfs], [foaf], [purl], [skos],
    [nsprov], [owl], [dbo], [dbr], [dbp], [geo], [georss], [xsd]). *)
val with_defaults : unit -> t

val add : t -> prefix:string -> iri:string -> unit

(** [lookup env prefix] is the namespace IRI bound to [prefix], if any. *)
val lookup : t -> string -> string option

(** [expand env qname] expands a prefixed name such as ["ub:headOf"] to a full
    IRI string. Raises [Failure] if the prefix is unbound or the string
    contains no colon. *)
val expand : t -> string -> string

(** [shrink env iri] renders [iri] as a prefixed name when a bound namespace
    is a prefix of it, and as [<iri>] otherwise. Longest namespace wins. *)
val shrink : t -> string -> string

val fold : t -> init:'a -> f:(prefix:string -> iri:string -> 'a -> 'a) -> 'a

(** {1 Vocabulary helpers}

    Each returns a full IRI string for a local name in the given namespace. *)

val ub : string -> string
val rdf : string -> string
val rdfs : string -> string
val foaf : string -> string
val purl : string -> string
val skos : string -> string
val nsprov : string -> string
val owl : string -> string
val dbo : string -> string
val dbr : string -> string
val dbp : string -> string
val geo : string -> string
val georss : string -> string
val xsd : string -> string

(** [rdf_type] is the [rdf:type] IRI. *)
val rdf_type : string
