type t = (string, string) Hashtbl.t

let ns_ub = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
let ns_rdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
let ns_rdfs = "http://www.w3.org/2000/01/rdf-schema#"
let ns_foaf = "http://xmlns.com/foaf/0.1/"
let ns_purl = "http://purl.org/dc/terms/"
let ns_skos = "http://www.w3.org/2004/02/skos/core#"
let ns_nsprov = "http://www.w3.org/ns/prov#"
let ns_owl = "http://www.w3.org/2002/07/owl#"
let ns_dbo = "http://dbpedia.org/ontology/"
let ns_dbr = "http://dbpedia.org/resource/"
let ns_dbp = "http://dbpedia.org/property/"
let ns_geo = "http://www.w3.org/2003/01/geo/wgs84_pos#"
let ns_georss = "http://www.georss.org/georss/"
let ns_xsd = "http://www.w3.org/2001/XMLSchema#"

let ub local = ns_ub ^ local
let rdf local = ns_rdf ^ local
let rdfs local = ns_rdfs ^ local
let foaf local = ns_foaf ^ local
let purl local = ns_purl ^ local
let skos local = ns_skos ^ local
let nsprov local = ns_nsprov ^ local
let owl local = ns_owl ^ local
let dbo local = ns_dbo ^ local
let dbr local = ns_dbr ^ local
let dbp local = ns_dbp ^ local
let geo local = ns_geo ^ local
let georss local = ns_georss ^ local
let xsd local = ns_xsd ^ local

let rdf_type = rdf "type"

let create () : t = Hashtbl.create 16

let add env ~prefix ~iri = Hashtbl.replace env prefix iri

let defaults =
  [
    ("ub", ns_ub); ("rdf", ns_rdf); ("rdfs", ns_rdfs); ("foaf", ns_foaf);
    ("purl", ns_purl); ("skos", ns_skos); ("nsprov", ns_nsprov);
    ("owl", ns_owl); ("dbo", ns_dbo); ("dbr", ns_dbr); ("dbp", ns_dbp);
    ("geo", ns_geo); ("georss", ns_georss); ("xsd", ns_xsd);
  ]

let with_defaults () =
  let env = create () in
  List.iter (fun (prefix, iri) -> add env ~prefix ~iri) defaults;
  env

let lookup env prefix = Hashtbl.find_opt env prefix

let expand env qname =
  match String.index_opt qname ':' with
  | None -> failwith (Printf.sprintf "Namespace.expand: no colon in %S" qname)
  | Some i -> (
      let prefix = String.sub qname 0 i in
      let local = String.sub qname (i + 1) (String.length qname - i - 1) in
      match lookup env prefix with
      | Some ns -> ns ^ local
      | None ->
          failwith (Printf.sprintf "Namespace.expand: unbound prefix %S" prefix))

let shrink env iri =
  let best =
    Hashtbl.fold
      (fun prefix ns acc ->
        if
          String.length ns <= String.length iri
          && String.sub iri 0 (String.length ns) = ns
        then
          match acc with
          | Some (_, best_ns) when String.length best_ns >= String.length ns ->
              acc
          | _ -> Some (prefix, ns)
        else acc)
      env None
  in
  match best with
  | Some (prefix, ns) ->
      let local =
        String.sub iri (String.length ns) (String.length iri - String.length ns)
      in
      prefix ^ ":" ^ local
  | None -> "<" ^ iri ^ ">"

let fold env ~init ~f =
  Hashtbl.fold (fun prefix iri acc -> f ~prefix ~iri acc) env init
