exception Parse_error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type token =
  | Tok_iri of string
  | Tok_qname of string (* keeps the colon, e.g. "ub:headOf" or ":x" *)
  | Tok_bnode of string
  | Tok_string of string
  | Tok_lang of string (* @en — emitted right after a Tok_string *)
  | Tok_dtype_sep (* ^^ *)
  | Tok_number of string
  | Tok_boolean of bool
  | Tok_a
  | Tok_prefix_directive
  | Tok_dot
  | Tok_semicolon
  | Tok_comma

type ltoken = { tok : token; tline : int }

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = '%'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let push tok = toks := { tok; tline = !line } :: !toks in
  let peek i = if !pos + i < n then Some src.[!pos + i] else None in
  let read_delimited stop =
    (* !pos is just after the opening delimiter *)
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then error !line "unterminated token (expected %C)" stop
      else
        let c = src.[!pos] in
        if c = stop then incr pos
        else if c = '\\' then begin
          Buffer.add_char buf '\\';
          incr pos;
          if !pos >= n then error !line "dangling backslash";
          Buffer.add_char buf src.[!pos];
          incr pos;
          go ()
        end
        else begin
          if c = '\n' then incr line;
          Buffer.add_char buf c;
          incr pos;
          go ()
        end
    in
    go ();
    Buffer.contents buf
  in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  while !pos < n do
    let c = src.[!pos] in
    match c with
    | ' ' | '\t' | '\r' -> incr pos
    | '\n' ->
        incr line;
        incr pos
    | '#' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | '<' ->
        incr pos;
        push (Tok_iri (read_delimited '>'))
    | '"' ->
        incr pos;
        push (Tok_string (Term.unescape_string (read_delimited '"')))
    | '@' ->
        incr pos;
        let word =
          read_while (fun c ->
              (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9') || c = '-')
        in
        if word = "prefix" then push Tok_prefix_directive
        else if word = "" then error !line "empty @ directive"
        else push (Tok_lang word)
    | '^' when peek 1 = Some '^' ->
        pos := !pos + 2;
        push Tok_dtype_sep
    | '.' ->
        incr pos;
        push Tok_dot
    | ';' ->
        incr pos;
        push Tok_semicolon
    | ',' ->
        incr pos;
        push Tok_comma
    | '_' when peek 1 = Some ':' ->
        pos := !pos + 2;
        let label = read_while is_name_char in
        if label = "" then error !line "empty blank node label";
        push (Tok_bnode label)
    | c when (c >= '0' && c <= '9') || c = '-' || c = '+' ->
        let num =
          read_while (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-'
                               || c = '+' || c = 'e' || c = 'E')
        in
        (* A trailing '.' is the statement terminator, not part of the num. *)
        let num, dot =
          if String.length num > 0 && num.[String.length num - 1] = '.' then
            (String.sub num 0 (String.length num - 1), true)
          else (num, false)
        in
        push (Tok_number num);
        if dot then push Tok_dot
    | c
      when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = ':' ->
        let word = read_while (fun c -> is_name_char c || c = ':') in
        (* A trailing '.' terminates the statement (e.g. "ub:x."). *)
        let word, dot =
          if String.length word > 0 && word.[String.length word - 1] = '.' then
            (String.sub word 0 (String.length word - 1), true)
          else (word, false)
        in
        (if word = "a" then push Tok_a
         else if word = "true" then push (Tok_boolean true)
         else if word = "false" then push (Tok_boolean false)
         else if String.contains word ':' then push (Tok_qname word)
         else error !line "bare word %S is not valid Turtle here" word);
        if dot then push Tok_dot
    | c -> error !line "unexpected character %C" c
  done;
  List.rev !toks

type state = {
  mutable toks : ltoken list;
  env : Namespace.t;
  mutable acc : Triple.t list;
}

let cur_line st = match st.toks with [] -> 0 | { tline; _ } :: _ -> tline

let pop st =
  match st.toks with
  | [] -> error (cur_line st) "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      t

let number_term s =
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then Term.typed_literal s ~datatype:Term.xsd_double
  else Term.typed_literal s ~datatype:Term.xsd_integer

let parse_term st =
  let { tok; tline } = pop st in
  let expand q =
    try Namespace.expand st.env q
    with Failure msg -> error tline "%s" msg
  in
  match tok with
  | Tok_iri iri -> Term.Iri iri
  | Tok_qname q -> Term.Iri (expand q)
  | Tok_bnode b -> Term.Bnode b
  | Tok_a -> Term.Iri Namespace.rdf_type
  | Tok_number s -> number_term s
  | Tok_boolean b ->
      Term.typed_literal (string_of_bool b) ~datatype:Term.xsd_boolean
  | Tok_string s -> (
      match st.toks with
      | { tok = Tok_lang lang; _ } :: rest ->
          st.toks <- rest;
          Term.lang_literal s ~lang
      | { tok = Tok_dtype_sep; _ } :: rest -> (
          st.toks <- rest;
          match (pop st).tok with
          | Tok_iri iri -> Term.typed_literal s ~datatype:iri
          | Tok_qname q ->
              Term.typed_literal s ~datatype:(expand q)
          | _ -> error tline "expected datatype IRI after ^^")
      | _ -> Term.literal s)
  | Tok_lang _ | Tok_dtype_sep | Tok_dot | Tok_semicolon | Tok_comma
  | Tok_prefix_directive ->
      error tline "expected a term"

let expect_dot st =
  match pop st with
  | { tok = Tok_dot; _ } -> ()
  | { tline; _ } -> error tline "expected '.'"

let parse_prefix_directive st =
  let { tok; tline } = pop st in
  let prefix =
    match tok with
    | Tok_qname q when String.length q > 0 && q.[String.length q - 1] = ':' ->
        String.sub q 0 (String.length q - 1)
    | _ -> error tline "expected prefix label after @prefix"
  in
  let iri =
    match (pop st).tok with
    | Tok_iri iri -> iri
    | _ -> error tline "expected IRI in @prefix"
  in
  Namespace.add st.env ~prefix ~iri;
  expect_dot st

let rec parse_object_list st subject predicate =
  let o = parse_term st in
  st.acc <- Triple.make subject predicate o :: st.acc;
  match st.toks with
  | { tok = Tok_comma; _ } :: rest ->
      st.toks <- rest;
      parse_object_list st subject predicate
  | _ -> ()

let rec parse_predicate_list st subject =
  let predicate = parse_term st in
  parse_object_list st subject predicate;
  match st.toks with
  | { tok = Tok_semicolon; _ } :: rest -> (
      st.toks <- rest;
      (* Allow a trailing semicolon before '.' *)
      match st.toks with
      | { tok = Tok_dot; _ } :: _ -> ()
      | _ -> parse_predicate_list st subject)
  | _ -> ()

let parse_statement st =
  match st.toks with
  | { tok = Tok_prefix_directive; _ } :: rest ->
      st.toks <- rest;
      parse_prefix_directive st
  | _ ->
      let subject = parse_term st in
      parse_predicate_list st subject;
      expect_dot st

let copy_env env =
  let fresh = Namespace.create () in
  Namespace.fold env ~init:()
    ~f:(fun ~prefix ~iri () -> Namespace.add fresh ~prefix ~iri);
  fresh

let parse_string ?env src =
  let env =
    match env with
    | Some e -> copy_env e
    | None -> Namespace.with_defaults ()
  in
  let st = { toks = tokenize src; env; acc = [] } in
  while st.toks <> [] do
    parse_statement st
  done;
  List.rev st.acc

let parse_file ?env path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string ?env (In_channel.input_all ic))
