(** N-Triples parsing and serialization.

    The parser accepts the line-oriented N-Triples syntax: one triple per
    line, [#] comments, blank lines, [\u]-style escapes kept verbatim. *)

exception Parse_error of { line : int; message : string }

(** [parse_line ?line s] parses a single N-Triples line. [None] for blank and
    comment lines. Raises {!Parse_error} on malformed input ([line] is used
    in the error report and defaults to 0). *)
val parse_line : ?line:int -> string -> Triple.t option

(** [parse_string s] parses a whole N-Triples document. *)
val parse_string : string -> Triple.t list

(** [parse_file path] parses the N-Triples file at [path]. *)
val parse_file : string -> Triple.t list

(** [to_string triples] serializes in N-Triples syntax, one per line. *)
val to_string : Triple.t list -> string

(** [write_file path triples] serializes to a file. *)
val write_file : string -> Triple.t list -> unit
