(** RDF triples (Definition 1): ⟨subject, predicate, object⟩. *)

type t = { s : Term.t; p : Term.t; o : Term.t }

val make : Term.t -> Term.t -> Term.t -> t

(** [is_valid t] checks the typing constraint of Definition 1: the subject is
    an IRI or blank node, the predicate an IRI, the object any term. *)
val is_valid : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

(** Positions within a triple, used by indexes and pattern code. *)
type position = Subject | Predicate | Object

val at : t -> position -> Term.t

(** [to_ntriples t] is the one-line N-Triples rendering, including the
    terminating [" ."]. *)
val to_ntriples : t -> string

val pp : Format.formatter -> t -> unit
