type t = (int * (int, unit) Hashtbl.t) list

let empty = []

let of_list assoc = assoc

let set cands ~col values =
  (col, values) :: List.filter (fun (c, _) -> c <> col) cands

let find cands ~col = List.assoc_opt col cands

let allows cands ~col value =
  match List.assoc_opt col cands with
  | None -> true
  | Some values -> Hashtbl.mem values value

let is_empty = function [] -> true | _ :: _ -> false

let restrict cands ~cols = List.filter (fun (c, _) -> List.mem c cols) cands
