lib/engine/hash_join.mli: Candidates Compiled Planner Rdf_store Sparql
