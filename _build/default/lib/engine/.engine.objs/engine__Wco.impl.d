lib/engine/wco.ml: Array Candidates Compiled Hashtbl List Planner Sparql
