lib/engine/compiled.mli: Rdf_store Sparql
