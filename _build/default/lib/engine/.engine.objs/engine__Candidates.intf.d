lib/engine/candidates.mli: Hashtbl
