lib/engine/bgp.mli: Sparql
