lib/engine/wco.mli: Candidates Planner Rdf_store Sparql
