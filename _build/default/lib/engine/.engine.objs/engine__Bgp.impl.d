lib/engine/bgp.ml: Array Fun List Sparql
