lib/engine/compiled.ml: Array List Rdf_store Sparql
