lib/engine/planner.mli: Compiled Rdf_store Sparql
