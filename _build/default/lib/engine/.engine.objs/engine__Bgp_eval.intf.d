lib/engine/bgp_eval.mli: Candidates Planner Rdf_store Sparql
