lib/engine/hash_join.ml: Array Candidates Compiled List Planner Sparql
