lib/engine/bgp_eval.ml: Compiled Hash_join Hashtbl Planner Rdf_store Sparql Wco
