lib/engine/planner.ml: Array Compiled Float Fun List Rdf_store Sparql
