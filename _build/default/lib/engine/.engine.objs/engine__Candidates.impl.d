lib/engine/candidates.ml: Hashtbl List
