(** gStore-style worst-case-optimal BGP evaluation: patterns are applied in
    the planner's order, each extending the current partial results
    vertex-at-a-time through index range scans, with candidate sets pruning
    newly bound variables on the fly. A pattern whose variables are all
    already bound acts as an existence filter (the intersection step of
    WCO joins on cyclic patterns). *)

val eval :
  Rdf_store.Triple_store.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  Sparql.Bag.t
