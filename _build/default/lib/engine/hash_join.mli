(** Jena-style BGP evaluation: each triple pattern is scanned into a bag of
    mappings (pruned by candidate sets), and the bags are combined left-deep
    in the planner's order with binary hash joins (Eq. 9's cost model). *)

val eval :
  Rdf_store.Triple_store.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  Sparql.Bag.t

(** [scan_pattern store ~width pattern ~candidates] materializes the
    matches of a single triple pattern as a bag (exposed for LBR, which
    evaluates triple patterns separately). *)
val scan_pattern :
  Rdf_store.Triple_store.t ->
  width:int ->
  Compiled.t ->
  candidates:Candidates.t ->
  Sparql.Bag.t
