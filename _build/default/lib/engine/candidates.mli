(** Candidate result sets for variables (Section 6): a map from variable
    column to the set of term ids the variable is allowed to take. BGP
    evaluators consult these to prune matches on the fly. *)

type t

val empty : t

(** [of_list assoc] builds candidates from [(column, allowed values)]
    pairs. *)
val of_list : (int * (int, unit) Hashtbl.t) list -> t

(** [set cands ~col values] returns candidates extended/overridden at
    [col]. *)
val set : t -> col:int -> (int, unit) Hashtbl.t -> t

val find : t -> col:int -> (int, unit) Hashtbl.t option

(** [allows cands ~col value] is false only when [col] has a candidate set
    that does not contain [value]. *)
val allows : t -> col:int -> int -> bool

val is_empty : t -> bool

(** [restrict cands ~cols] drops candidate sets for columns outside
    [cols]. Used when crossing an OPTIONAL boundary: only columns
    universally bound by the OPTIONAL-left side may prune its right side
    (pruning any other column could turn an extension into a spuriously
    surviving unextended row). *)
val restrict : t -> cols:int list -> t
