(** BGPs as sets of triple patterns, and the coalescing machinery of
    Definitions 3–5: triple patterns are coalescable when they share a
    variable at a subject/object position, and sibling triple patterns are
    grouped into *maximal* BGPs (no further coalescing possible). *)

type t = Sparql.Triple_pattern.t list

(** [vars bgp] — distinct variables in first-use order. *)
val vars : t -> string list

(** [subject_object_vars bgp] — distinct subject/object-position variables
    (the ones that matter for coalescability). *)
val subject_object_vars : t -> string list

(** [coalescable b1 b2] per Definition 4: some pattern of [b1] is
    coalescable with some pattern of [b2]. The empty BGP is coalescable
    with nothing. *)
val coalescable : t -> t -> bool

(** [coalesce_maximal patterns] partitions sibling triple patterns into
    maximal BGPs (connected components of the coalescability relation).
    Components are ordered by their leftmost constituent pattern, matching
    the BE-tree construction rule that a BGP node sits where its leftmost
    triple pattern originally was; within a component, source order is
    kept. *)
val coalesce_maximal : Sparql.Triple_pattern.t list -> t list
