type t = Sparql.Triple_pattern.t list

let add_distinct acc vs =
  List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) acc vs

let vars bgp =
  List.rev
    (List.fold_left
       (fun acc tp -> add_distinct acc (Sparql.Triple_pattern.vars tp))
       [] bgp)

let subject_object_vars bgp =
  List.rev
    (List.fold_left
       (fun acc tp ->
         add_distinct acc (Sparql.Triple_pattern.subject_object_vars tp))
       [] bgp)

let coalescable b1 b2 =
  List.exists
    (fun tp1 ->
      List.exists (fun tp2 -> Sparql.Triple_pattern.coalescable tp1 tp2) b2)
    b1

(* Union-find over pattern indexes. *)
let coalesce_maximal patterns =
  let arr = Array.of_list patterns in
  let n = Array.length arr in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    (* Keep the smaller index as the root so each component is identified
       by its leftmost pattern. *)
    if ri < rj then parent.(rj) <- ri else if rj < ri then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Sparql.Triple_pattern.coalescable arr.(i) arr.(j) then union i j
    done
  done;
  (* Components in leftmost-root order, members in source order. *)
  let roots = ref [] in
  for i = n - 1 downto 0 do
    if find i = i then roots := i :: !roots
  done;
  List.map
    (fun root ->
      let members = ref [] in
      for i = n - 1 downto 0 do
        if find i = root then members := arr.(i) :: !members
      done;
      !members)
    !roots
