let scan_pattern store ~width pattern ~candidates =
  let bag = Sparql.Bag.create ~width in
  let empty = Sparql.Binding.create ~width in
  Compiled.iter_matches store pattern empty ~f:(fun ~s ~p ~o ->
      let fresh = Sparql.Binding.create ~width in
      let consistent = ref true in
      let bind node value =
        match node with
        | Compiled.Cvar col ->
            if not (Candidates.allows candidates ~col value) then
              consistent := false
            else if fresh.(col) = Sparql.Binding.unbound then
              fresh.(col) <- value
            else if fresh.(col) <> value then consistent := false
        | Compiled.Cterm _ | Compiled.Missing -> ()
      in
      bind pattern.Compiled.cs s;
      bind pattern.Compiled.cp p;
      bind pattern.Compiled.co o;
      if !consistent then Sparql.Bag.push bag fresh);
  bag

let eval store ~width (plan : Planner.plan) ~candidates =
  List.fold_left
    (fun acc (step : Planner.step) ->
      let scanned = scan_pattern store ~width step.Planner.pattern ~candidates in
      Sparql.Bag.join acc scanned)
    (Sparql.Bag.unit ~width) plan.steps
