type t = {
  mutable by_id : string array;
  mutable count : int;
  by_name : (string, int) Hashtbl.t;
}

let create () = { by_id = Array.make 8 ""; count = 0; by_name = Hashtbl.create 8 }

let id table name =
  match Hashtbl.find_opt table.by_name name with
  | Some i -> i
  | None ->
      if table.count = Array.length table.by_id then begin
        let fresh = Array.make (2 * table.count) "" in
        Array.blit table.by_id 0 fresh 0 table.count;
        table.by_id <- fresh
      end;
      let i = table.count in
      table.by_id.(i) <- name;
      table.count <- i + 1;
      Hashtbl.add table.by_name name i;
      i

let of_list names =
  let table = create () in
  List.iter (fun n -> ignore (id table n)) names;
  table

let find table name = Hashtbl.find_opt table.by_name name

let name table col =
  if col < 0 || col >= table.count then
    invalid_arg (Printf.sprintf "Vartable.name: column %d out of range" col);
  table.by_id.(col)

let size table = table.count

let names table = List.init table.count (fun i -> table.by_id.(i))
