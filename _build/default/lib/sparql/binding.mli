(** Mappings μ (Section 3): partial functions from variables to term ids,
    represented as flat int arrays indexed by {!Vartable} column, with
    {!unbound} marking variables outside dom(μ). *)

type t = int array

(** The sentinel for a variable outside dom(μ). Term ids are never
    negative. *)
val unbound : int

(** [create ~width] is the empty mapping over [width] columns. *)
val create : width:int -> t

val is_bound : t -> int -> bool

(** [dom row] is the list of bound columns. *)
val dom : t -> int list

(** [compatible r1 r2] — μ1 ~ μ2: all mutually bound columns agree. *)
val compatible : t -> t -> bool

(** [merge r1 r2] — μ1 ∪ μ2, assuming compatibility (unchecked). *)
val merge : t -> t -> t

val equal : t -> t -> bool

(** [hash_on row cols] hashes the values at [cols] (for join keys); the
    caller must ensure all [cols] are bound. *)
val hash_on : t -> int list -> int

(** [equal_on r1 r2 cols] tests equality restricted to [cols]. *)
val equal_on : t -> t -> int list -> bool

(** [all_bound row cols] tests whether every column in [cols] is bound. *)
val all_bound : t -> int list -> bool
