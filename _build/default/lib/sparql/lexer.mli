(** Tokenizer for the SPARQL-UO subset: SELECT queries with BGPs, nested
    groups, UNION, OPTIONAL and FILTER. *)

type token =
  | SELECT
  | DISTINCT
  | WHERE
  | PREFIX
  | UNION
  | OPTIONAL
  | FILTER
  | BOUND
  | LIMIT
  | OFFSET
  | MINUS_KW  (** the MINUS operator keyword *)
  | VALUES
  | UNDEF
  | EXISTS
  | NOT_KW
  | ORDER
  | BY
  | ASC
  | DESC
  | ASK
  | CONSTRUCT
  | DESCRIBE
  | GROUP
  | HAVING
  | AS
  | COUNT
  | SUM
  | AVG
  | MIN_KW
  | MAX_KW
  | SAMPLE
  | INSERT
  | DELETE
  | DATA
  | IDENT of string  (** bare word — a builtin function name in FILTERs *)
  | PLUS_SYM
  | MINUS_SYM
  | SLASH
  | PIPE  (** single [|] — property path alternation *)
  | CARET  (** single [^] — property path inversion *)
  | KW_A  (** the [a] abbreviation for rdf:type *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | DOT
  | SEMI
  | COMMA
  | STAR
  | VAR of string  (** without the leading [?] or [$] *)
  | IRIREF of string  (** without angle brackets *)
  | QNAME of string  (** prefixed name, colon included *)
  | STRING of string  (** unescaped contents *)
  | LANGTAG of string
  | DTYPE_SEP  (** [^^] *)
  | INT of string
  | DECIMAL of string
  | EQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | BANG
  | ANDAND
  | OROR
  | EOF

exception Lex_error of { line : int; message : string }

type ltoken = { tok : token; line : int }

(** [tokenize src] scans the whole input; the result always ends with
    [EOF]. Raises {!Lex_error} on an unrecognized character. *)
val tokenize : string -> ltoken array

val token_to_string : token -> string
