type t =
  | Unit
  | Triple of Triple_pattern.t
  | And of t * t
  | Union of t * t
  | Optional of t * t
  | Minus of t * t
  | Filter of Ast.expr * t
  | Values of Ast.values_block
  | Group of t

let join_with acc p = match acc with None -> Some p | Some q -> Some (And (q, p))

let rec of_group (g : Ast.group) =
  let body, filters =
    List.fold_left
      (fun (acc, filters) element ->
        match element with
        | Ast.Triples tps ->
            let acc =
              List.fold_left (fun acc tp -> join_with acc (Triple tp)) acc tps
            in
            (acc, filters)
        | Ast.Group inner -> (join_with acc (of_group inner), filters)
        | Ast.Union gs -> (
            match List.map of_group gs with
            | [] -> (acc, filters)
            | first :: rest ->
                let union =
                  List.fold_left (fun u g -> Union (u, g)) first rest
                in
                (join_with acc union, filters))
        | Ast.Optional inner ->
            let left = Option.value acc ~default:Unit in
            (Some (Optional (left, of_group inner)), filters)
        | Ast.Minus inner ->
            let left = Option.value acc ~default:Unit in
            (Some (Minus (left, of_group inner)), filters)
        | Ast.Filter e -> (acc, e :: filters)
        | Ast.Values block -> (join_with acc (Values block), filters))
      (None, []) g
  in
  let body = Option.value body ~default:Unit in
  let body = List.fold_left (fun p e -> Filter (e, p)) body (List.rev filters) in
  Group body

let of_query (q : Ast.query) = of_group q.Ast.where

let add_distinct acc vs =
  List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) acc vs

let rec vars_acc acc = function
  | Unit -> acc
  | Triple tp -> add_distinct acc (Triple_pattern.vars tp)
  | And (p1, p2) | Union (p1, p2) | Optional (p1, p2) | Minus (p1, p2) ->
      vars_acc (vars_acc acc p1) p2
  | Filter (e, p) ->
      vars_acc (add_distinct acc (Expr.vars ~pattern_vars:Ast.group_vars e)) p
  | Values { vars; _ } -> add_distinct acc vars
  | Group p -> vars_acc acc p

let vars p = List.rev (vars_acc [] p)

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "UNIT"
  | Triple tp -> Format.pp_print_string fmt (Triple_pattern.to_string tp)
  | And (p1, p2) -> Format.fprintf fmt "@[<hv 2>(%a@ AND %a)@]" pp p1 pp p2
  | Union (p1, p2) -> Format.fprintf fmt "@[<hv 2>(%a@ UNION %a)@]" pp p1 pp p2
  | Optional (p1, p2) ->
      Format.fprintf fmt "@[<hv 2>(%a@ OPTIONAL %a)@]" pp p1 pp p2
  | Minus (p1, p2) -> Format.fprintf fmt "@[<hv 2>(%a@ MINUS %a)@]" pp p1 pp p2
  | Filter (e, p) ->
      Format.fprintf fmt "@[<hv 2>FILTER(%a,@ %a)@]"
        (Ast.pp_expr (Rdf.Namespace.with_defaults ()))
        e pp p
  | Values { vars; rows } ->
      Format.fprintf fmt "VALUES(%s/%d)" (String.concat "," vars)
        (List.length rows)
  | Group p -> Format.fprintf fmt "@[<hv 2>{ %a }@]" pp p
