exception Parse_error of { line : int; message : string }

type state = {
  toks : Lexer.ltoken array;
  mutable cur : int;
  env : Rdf.Namespace.t;
  mutable fresh : int;  (** counter for property-path helper variables *)
}

(* Property paths (the non-closure fragment: sequence, alternation,
   inversion, grouping) are desugared at parse time into plain triple
   patterns and UNIONs, so the whole optimizer applies to them
   unchanged. *)
type path =
  | P_link of Triple_pattern.node
  | P_inv of path
  | P_seq of path * path
  | P_alt of path * path

let error st fmt =
  let line = st.toks.(st.cur).Lexer.line in
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let peek st = st.toks.(st.cur).Lexer.tok

let peek2 st =
  if st.cur + 1 < Array.length st.toks then Some st.toks.(st.cur + 1).Lexer.tok
  else None

let advance st = st.cur <- st.cur + 1

let expect st tok =
  if peek st = tok then advance st
  else
    error st "expected %s but found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek st))

(* Does the current token start a term (hence a triples block)? *)
let starts_term st =
  match peek st with
  | Lexer.VAR _ | Lexer.IRIREF _ | Lexer.QNAME _ | Lexer.STRING _
  | Lexer.INT _ | Lexer.DECIMAL _ | Lexer.KW_A ->
      true
  | _ -> false

let parse_term st =
  match peek st with
  | Lexer.VAR v ->
      advance st;
      Triple_pattern.Var v
  | Lexer.IRIREF iri ->
      advance st;
      Triple_pattern.Term (Rdf.Term.Iri iri)
  | Lexer.QNAME q ->
      advance st;
      let iri =
        try Rdf.Namespace.expand st.env q
        with Failure msg -> error st "%s" msg
      in
      Triple_pattern.Term (Rdf.Term.Iri iri)
  | Lexer.KW_A ->
      advance st;
      Triple_pattern.Term (Rdf.Term.Iri Rdf.Namespace.rdf_type)
  | Lexer.INT s ->
      advance st;
      Triple_pattern.Term (Rdf.Term.typed_literal s ~datatype:Rdf.Term.xsd_integer)
  | Lexer.DECIMAL s ->
      advance st;
      Triple_pattern.Term (Rdf.Term.typed_literal s ~datatype:Rdf.Term.xsd_double)
  | Lexer.STRING s -> (
      advance st;
      match peek st with
      | Lexer.LANGTAG lang ->
          advance st;
          Triple_pattern.Term (Rdf.Term.lang_literal s ~lang)
      | Lexer.DTYPE_SEP -> (
          advance st;
          match peek st with
          | Lexer.IRIREF iri ->
              advance st;
              Triple_pattern.Term (Rdf.Term.typed_literal s ~datatype:iri)
          | Lexer.QNAME q ->
              advance st;
              let iri =
                try Rdf.Namespace.expand st.env q
                with Failure msg -> error st "%s" msg
              in
              Triple_pattern.Term (Rdf.Term.typed_literal s ~datatype:iri)
          | _ -> error st "expected datatype IRI after ^^")
      | _ -> Triple_pattern.Term (Rdf.Term.literal s))
  | tok -> error st "expected a term but found %s" (Lexer.token_to_string tok)

let parse_constant st =
  match parse_term st with
  | Triple_pattern.Term t -> t
  | Triple_pattern.Var v -> error st "expected a constant, found ?%s" v

let fresh_path_var st =
  let v = Printf.sprintf "_pp_%d" st.fresh in
  st.fresh <- st.fresh + 1;
  v

(* path := seq ('|' seq)* ; seq := elt ('/' elt)* ;
   elt := '^' elt | '(' path ')' | iri. Closures are rejected with a
   clear message (supporting them requires recursive evaluation, outside
   this engine's scope). *)
let rec parse_path st =
  let rec alts lhs =
    if peek st = Lexer.PIPE then begin
      advance st;
      alts (P_alt (lhs, parse_path_seq st))
    end
    else lhs
  in
  alts (parse_path_seq st)

and parse_path_seq st =
  let rec seqs lhs =
    if peek st = Lexer.SLASH then begin
      advance st;
      seqs (P_seq (lhs, parse_path_elt st))
    end
    else lhs
  in
  seqs (parse_path_elt st)

and parse_path_elt st =
  let primary =
    match peek st with
    | Lexer.CARET ->
        advance st;
        P_inv (parse_path_elt st)
    | Lexer.LPAREN ->
        advance st;
        let inner = parse_path st in
        expect st Lexer.RPAREN;
        inner
    | _ -> P_link (parse_term st)
  in
  match peek st with
  | Lexer.STAR | Lexer.PLUS_SYM ->
      error st
        "property path closures (*, +) are not supported; rewrite with \
         explicit joins"
  | _ -> primary

(* Desugar [path] between [subject] and [obj]: triple patterns for links
   and sequences (via fresh variables), UNION elements for alternation. *)
let rec desugar_path st path subject obj : Ast.element list =
  match path with
  | P_link predicate -> [ Ast.Triples [ Triple_pattern.make subject predicate obj ] ]
  | P_inv inner -> desugar_path st inner obj subject
  | P_seq (a, b) ->
      let mid = Triple_pattern.Var (fresh_path_var st) in
      desugar_path st a subject mid @ desugar_path st b mid obj
  | P_alt (a, b) ->
      [ Ast.Union [ desugar_path st a subject obj; desugar_path st b subject obj ] ]

(* subject predicate object ((';' predicate object) | (',' object))* '.'?
   Returns the plain triple patterns plus any elements produced by
   property-path desugaring. *)
let parse_triples_same_subject st (tps, extras) =
  let subject = parse_term st in
  let rec predicate_object_list (tps, extras) =
    let path = parse_path st in
    let rec object_list (tps, extras) =
      let obj = parse_term st in
      let tps, extras =
        match path with
        | P_link predicate ->
            (Triple_pattern.make subject predicate obj :: tps, extras)
        | _ -> (
            (* Desugared path: plain Triples elements fold into [tps] so
               they coalesce with their siblings; UNIONs stay elements. *)
            List.fold_left
              (fun (tps, extras) element ->
                match element with
                | Ast.Triples ts -> (List.rev_append ts tps, extras)
                | other -> (tps, other :: extras))
              (tps, extras)
              (desugar_path st path subject obj))
      in
      if peek st = Lexer.COMMA then begin
        advance st;
        object_list (tps, extras)
      end
      else (tps, extras)
    in
    let acc = object_list (tps, extras) in
    if peek st = Lexer.SEMI then begin
      advance st;
      (* Tolerate a trailing ';' before '.' or '}'. *)
      if starts_term st then predicate_object_list acc else acc
    end
    else acc
  in
  let acc = predicate_object_list (tps, extras) in
  if peek st = Lexer.DOT then advance st;
  acc

let parse_triples_block st =
  let rec go acc =
    if starts_term st then go (parse_triples_same_subject st acc) else acc
  in
  let tps, extras = go ([], []) in
  let blocks = if tps = [] then [] else [ Ast.Triples (List.rev tps) ] in
  blocks @ List.rev extras

(* ---------------- FILTER expressions ---------------- *)

(* Mutual recursion with group parsing (EXISTS { ... }). *)
let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Lexer.OROR then begin
    advance st;
    Expr.Or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_relational st in
  if peek st = Lexer.ANDAND then begin
    advance st;
    Expr.And (lhs, parse_and st)
  end
  else lhs

and parse_relational st =
  let lhs = parse_additive st in
  let cmp op =
    advance st;
    Expr.Cmp (op, lhs, parse_additive st)
  in
  match peek st with
  | Lexer.EQ -> cmp Expr.Ceq
  | Lexer.NEQ -> cmp Expr.Cneq
  | Lexer.LT -> cmp Expr.Clt
  | Lexer.GT -> cmp Expr.Cgt
  | Lexer.LE -> cmp Expr.Cle
  | Lexer.GE -> cmp Expr.Cge
  | _ -> lhs

and parse_additive st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS_SYM ->
        advance st;
        go (Expr.Arith (Expr.Add, lhs, parse_multiplicative st))
    | Lexer.MINUS_SYM ->
        advance st;
        go (Expr.Arith (Expr.Subtract, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR ->
        advance st;
        go (Expr.Arith (Expr.Multiply, lhs, parse_unary st))
    | Lexer.SLASH ->
        advance st;
        go (Expr.Arith (Expr.Divide, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.BANG ->
      advance st;
      Expr.Not (parse_unary st)
  | Lexer.MINUS_SYM ->
      advance st;
      Expr.Neg (parse_unary st)
  | Lexer.PLUS_SYM ->
      advance st;
      parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      let e = parse_or st in
      expect st Lexer.RPAREN;
      e
  | Lexer.BOUND ->
      advance st;
      expect st Lexer.LPAREN;
      let v =
        match peek st with
        | Lexer.VAR v ->
            advance st;
            v
        | _ -> error st "expected a variable in bound()"
      in
      expect st Lexer.RPAREN;
      Expr.Bound v
  | Lexer.EXISTS ->
      advance st;
      Expr.Exists (parse_group_body st)
  | Lexer.NOT_KW ->
      advance st;
      expect st Lexer.EXISTS;
      Expr.Not_exists (parse_group_body st)
  | Lexer.IDENT name -> (
      match Expr.builtin_of_name name with
      | None -> error st "unknown function %S" name
      | Some builtin ->
          advance st;
          expect st Lexer.LPAREN;
          let rec args acc =
            let acc = parse_or st :: acc in
            if peek st = Lexer.COMMA then begin
              advance st;
              args acc
            end
            else List.rev acc
          in
          let args = if peek st = Lexer.RPAREN then [] else args [] in
          expect st Lexer.RPAREN;
          let min_args, max_args = Expr.arity builtin in
          let n = List.length args in
          if n < min_args || n > max_args then
            error st "%s expects %d%s argument(s), got %d"
              (Expr.builtin_name builtin) min_args
              (if max_args > min_args then
                 Printf.sprintf "-%d" max_args
               else "")
              n;
          Expr.Call (builtin, args))
  | Lexer.VAR v ->
      advance st;
      Expr.Var v
  | _ -> (
      match parse_term st with
      | Triple_pattern.Var v -> Expr.Var v
      | Triple_pattern.Term t -> Expr.Const t)

(* ---------------- VALUES ---------------- *)

and parse_values st : Ast.values_block =
  (* Either VALUES ?x { cells } or VALUES (?x ?y) { (cells) ... }. *)
  let parse_cell () =
    match peek st with
    | Lexer.UNDEF ->
        advance st;
        None
    | _ -> Some (parse_constant st)
  in
  match peek st with
  | Lexer.VAR v ->
      advance st;
      expect st Lexer.LBRACE;
      let rec cells acc =
        if peek st = Lexer.RBRACE then begin
          advance st;
          List.rev acc
        end
        else cells ([ parse_cell () ] :: acc)
      in
      { Ast.vars = [ v ]; rows = cells [] }
  | Lexer.LPAREN ->
      advance st;
      let rec vars acc =
        match peek st with
        | Lexer.VAR v ->
            advance st;
            vars (v :: acc)
        | Lexer.RPAREN ->
            advance st;
            List.rev acc
        | tok -> error st "expected a variable in VALUES, found %s"
                   (Lexer.token_to_string tok)
      in
      let vars = vars [] in
      expect st Lexer.LBRACE;
      let rec rows acc =
        match peek st with
        | Lexer.RBRACE ->
            advance st;
            List.rev acc
        | Lexer.LPAREN ->
            advance st;
            let rec cells acc =
              if peek st = Lexer.RPAREN then begin
                advance st;
                List.rev acc
              end
              else cells (parse_cell () :: acc)
            in
            let row = cells [] in
            if List.length row <> List.length vars then
              error st "VALUES row arity %d does not match %d variables"
                (List.length row) (List.length vars);
            rows (row :: acc)
        | tok ->
            error st "expected a VALUES row, found %s" (Lexer.token_to_string tok)
      in
      { Ast.vars; rows = rows [] }
  | tok ->
      error st "expected VALUES variables, found %s" (Lexer.token_to_string tok)

(* ---------------- groups ---------------- *)

and parse_group_body st : Ast.group =
  expect st Lexer.LBRACE;
  let rec elements acc =
    match peek st with
    | Lexer.RBRACE ->
        advance st;
        List.rev acc
    | Lexer.LBRACE ->
        let first = parse_group_body st in
        let rec unions gs =
          if peek st = Lexer.UNION then begin
            advance st;
            let g = parse_group_body st in
            unions (g :: gs)
          end
          else List.rev gs
        in
        let gs = unions [ first ] in
        let element =
          match gs with [ g ] -> Ast.Group g | gs -> Ast.Union gs
        in
        (* Tolerate an optional '.' after a group, as SPARQL does. *)
        if peek st = Lexer.DOT then advance st;
        elements (element :: acc)
    | Lexer.OPTIONAL ->
        advance st;
        let g = parse_group_body st in
        if peek st = Lexer.DOT then advance st;
        elements (Ast.Optional g :: acc)
    | Lexer.MINUS_KW ->
        advance st;
        let g = parse_group_body st in
        if peek st = Lexer.DOT then advance st;
        elements (Ast.Minus g :: acc)
    | Lexer.VALUES ->
        advance st;
        let block = parse_values st in
        if peek st = Lexer.DOT then advance st;
        elements (Ast.Values block :: acc)
    | Lexer.FILTER ->
        advance st;
        let explicit_paren = peek st = Lexer.LPAREN in
        if explicit_paren then advance st;
        let e = parse_expr st in
        if explicit_paren then expect st Lexer.RPAREN;
        if peek st = Lexer.DOT then advance st;
        elements (Ast.Filter e :: acc)
    | _ when starts_term st ->
        let blocks = parse_triples_block st in
        elements (List.rev_append blocks acc)
    | tok ->
        error st "unexpected %s in group graph pattern"
          (Lexer.token_to_string tok)
  in
  elements []

(* ---------------- query forms and modifiers ---------------- *)

let parse_prefixes st =
  while peek st = Lexer.PREFIX do
    advance st;
    let prefix =
      match peek st with
      | Lexer.QNAME q when String.length q > 0 && q.[String.length q - 1] = ':'
        ->
          advance st;
          String.sub q 0 (String.length q - 1)
      | tok ->
          error st "expected prefix label, found %s" (Lexer.token_to_string tok)
    in
    match peek st with
    | Lexer.IRIREF iri ->
        advance st;
        Rdf.Namespace.add st.env ~prefix ~iri
    | tok -> error st "expected IRI in PREFIX, found %s" (Lexer.token_to_string tok)
  done

let agg_kind_of_token = function
  | Lexer.COUNT -> Some Ast.Count
  | Lexer.SUM -> Some Ast.Sum
  | Lexer.AVG -> Some Ast.Avg
  | Lexer.MIN_KW -> Some Ast.Min
  | Lexer.MAX_KW -> Some Ast.Max
  | Lexer.SAMPLE -> Some Ast.Sample
  | _ -> None

(* (COUNT(DISTINCT ?x) AS ?n) — the '(' has already been consumed. *)
let parse_aggregate_item st =
  let agg =
    match agg_kind_of_token (peek st) with
    | Some agg ->
        advance st;
        agg
    | None ->
        error st "expected an aggregate function, found %s"
          (Lexer.token_to_string (peek st))
  in
  expect st Lexer.LPAREN;
  let distinct =
    if peek st = Lexer.DISTINCT then begin
      advance st;
      true
    end
    else false
  in
  let target =
    match peek st with
    | Lexer.STAR ->
        advance st;
        None
    | Lexer.VAR v ->
        advance st;
        Some v
    | tok ->
        error st "expected a variable or * in aggregate, found %s"
          (Lexer.token_to_string tok)
  in
  (match (agg, target) with
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max | Ast.Sample), None ->
      error st "only COUNT accepts *"
  | _ -> ());
  expect st Lexer.RPAREN;
  expect st Lexer.AS;
  let alias =
    match peek st with
    | Lexer.VAR v ->
        advance st;
        v
    | tok -> error st "expected the AS variable, found %s" (Lexer.token_to_string tok)
  in
  expect st Lexer.RPAREN;
  Ast.Aggregate { agg; distinct; target; alias }

let parse_select st =
  expect st Lexer.SELECT;
  let distinct =
    if peek st = Lexer.DISTINCT then begin
      advance st;
      true
    end
    else false
  in
  let rec items acc =
    match peek st with
    | Lexer.VAR v ->
        advance st;
        items (Ast.Svar v :: acc)
    | Lexer.LPAREN ->
        advance st;
        items (parse_aggregate_item st :: acc)
    | _ -> List.rev acc
  in
  match peek st with
  | Lexer.STAR ->
      advance st;
      (Ast.Select Ast.Star, distinct)
  | Lexer.VAR _ | Lexer.LPAREN -> (
      let items = items [] in
      let has_aggregate =
        List.exists (function Ast.Aggregate _ -> true | Ast.Svar _ -> false) items
      in
      if has_aggregate then (Ast.Select (Ast.Aggregated items), distinct)
      else
        ( Ast.Select
            (Ast.Projection
               (List.map
                  (function Ast.Svar v -> v | Ast.Aggregate _ -> assert false)
                  items)),
          distinct ))
  | _ -> (Ast.Select Ast.Star, distinct) (* the paper's bare "SELECT WHERE" *)

let parse_form st =
  match peek st with
  | Lexer.SELECT -> parse_select st
  | Lexer.ASK ->
      advance st;
      (Ast.Ask, false)
  | Lexer.CONSTRUCT ->
      advance st;
      expect st Lexer.LBRACE;
      let blocks = parse_triples_block st in
      expect st Lexer.RBRACE;
      let template =
        List.concat_map
          (function
            | Ast.Triples tps -> tps
            | _ -> error st "property paths are not allowed in a CONSTRUCT template")
          blocks
      in
      (Ast.Construct template, false)
  | Lexer.DESCRIBE ->
      advance st;
      let rec targets acc =
        match peek st with
        | Lexer.VAR v ->
            advance st;
            targets (Ast.Dvar v :: acc)
        | Lexer.IRIREF _ | Lexer.QNAME _ ->
            let t = parse_constant st in
            targets (Ast.Dterm t :: acc)
        | _ -> List.rev acc
      in
      let targets = targets [] in
      if targets = [] then error st "DESCRIBE needs at least one target";
      (Ast.Describe targets, false)
  | tok ->
      error st "expected SELECT, ASK, CONSTRUCT or DESCRIBE, found %s"
        (Lexer.token_to_string tok)

let parse_order_by st =
  if peek st = Lexer.ORDER then begin
    advance st;
    expect st Lexer.BY;
    let rec keys acc =
      match peek st with
      | Lexer.VAR v ->
          advance st;
          keys ((v, false) :: acc)
      | Lexer.ASC | Lexer.DESC ->
          let descending = peek st = Lexer.DESC in
          advance st;
          expect st Lexer.LPAREN;
          let v =
            match peek st with
            | Lexer.VAR v ->
                advance st;
                v
            | _ -> error st "expected a variable in ORDER BY"
          in
          expect st Lexer.RPAREN;
          keys ((v, descending) :: acc)
      | _ -> List.rev acc
    in
    let keys = keys [] in
    if keys = [] then error st "ORDER BY needs at least one key";
    keys
  end
  else []

let parse src =
  let st =
    { toks = Lexer.tokenize src; cur = 0;
      env = Rdf.Namespace.with_defaults (); fresh = 0 }
  in
  ignore (peek2 st);
  parse_prefixes st;
  let form, distinct = parse_form st in
  if peek st = Lexer.WHERE then advance st;
  (* DESCRIBE <iri> may omit the WHERE clause entirely. *)
  let where =
    match (form, peek st) with
    | Ast.Describe _, tok when tok <> Lexer.LBRACE -> []
    | _ -> parse_group_body st
  in
  (* GROUP BY / HAVING come before ORDER BY. *)
  let group_by =
    if peek st = Lexer.GROUP then begin
      advance st;
      expect st Lexer.BY;
      let rec keys acc =
        match peek st with
        | Lexer.VAR v ->
            advance st;
            keys (v :: acc)
        | _ -> List.rev acc
      in
      let keys = keys [] in
      if keys = [] then error st "GROUP BY needs at least one variable";
      keys
    end
    else []
  in
  let having =
    if peek st = Lexer.HAVING then begin
      advance st;
      let explicit_paren = peek st = Lexer.LPAREN in
      if explicit_paren then advance st;
      let e = parse_expr st in
      if explicit_paren then expect st Lexer.RPAREN;
      Some e
    end
    else None
  in
  let order_by = parse_order_by st in
  let limit = ref None and offset = ref None in
  let parse_count what =
    match peek st with
    | Lexer.INT text -> (
        advance st;
        match int_of_string_opt text with
        | Some n when n >= 0 -> n
        | _ -> error st "invalid %s count %s" what text)
    | tok ->
        error st "expected a count after %s, found %s" what
          (Lexer.token_to_string tok)
  in
  let progress = ref true in
  while !progress do
    match peek st with
    | Lexer.LIMIT ->
        advance st;
        limit := Some (parse_count "LIMIT")
    | Lexer.OFFSET ->
        advance st;
        offset := Some (parse_count "OFFSET")
    | _ -> progress := false
  done;
  (match peek st with
  | Lexer.EOF -> ()
  | tok -> error st "trailing %s after query" (Lexer.token_to_string tok));
  {
    Ast.env = st.env;
    form;
    distinct;
    where;
    group_by;
    having;
    order_by;
    limit = !limit;
    offset = !offset;
  }

let parse_group ?env src =
  let env = match env with Some e -> e | None -> Rdf.Namespace.with_defaults () in
  let st = { toks = Lexer.tokenize src; cur = 0; env; fresh = 0 } in
  let g = parse_group_body st in
  (match peek st with
  | Lexer.EOF -> ()
  | tok -> error st "trailing %s after group" (Lexer.token_to_string tok));
  g

(* ---------------- SPARQL Update ---------------- *)

(* Ground triples for INSERT DATA / DELETE DATA: a braced triples block
   where variables are rejected. *)
let parse_ground_triples st =
  expect st Lexer.LBRACE;
  let blocks = parse_triples_block st in
  expect st Lexer.RBRACE;
  List.concat_map
    (function
      | Ast.Triples tps ->
          List.map
            (fun (tp : Triple_pattern.t) ->
              match (tp.s, tp.p, tp.o) with
              | Triple_pattern.Term s, Triple_pattern.Term p, Triple_pattern.Term o
                ->
                  let triple = Rdf.Triple.make s p o in
                  if not (Rdf.Triple.is_valid triple) then
                    error st "invalid triple in data block: %s"
                      (Rdf.Triple.to_ntriples triple);
                  triple
              | _ -> error st "variables are not allowed in a DATA block")
            tps
      | _ -> error st "property paths are not allowed in a DATA block")
    blocks

(* A braced template of triple patterns (for DELETE { } / INSERT { }). *)
let parse_template st =
  expect st Lexer.LBRACE;
  let blocks = parse_triples_block st in
  expect st Lexer.RBRACE;
  List.concat_map
    (function
      | Ast.Triples tps -> tps
      | _ -> error st "property paths are not allowed in an update template")
    blocks

let parse_update_operation st =
  match peek st with
  | Lexer.INSERT -> (
      advance st;
      match peek st with
      | Lexer.DATA ->
          advance st;
          Ast.Insert_data (parse_ground_triples st)
      | _ ->
          (* INSERT { template } WHERE { pattern } *)
          let insert = parse_template st in
          expect st Lexer.WHERE;
          let where = parse_group_body st in
          Ast.Modify { delete = []; insert; where })
  | Lexer.DELETE -> (
      advance st;
      match peek st with
      | Lexer.DATA ->
          advance st;
          Ast.Delete_data (parse_ground_triples st)
      | Lexer.WHERE ->
          advance st;
          Ast.Delete_where (parse_group_body st)
      | _ -> (
          let delete = parse_template st in
          match peek st with
          | Lexer.INSERT ->
              advance st;
              let insert = parse_template st in
              expect st Lexer.WHERE;
              let where = parse_group_body st in
              Ast.Modify { delete; insert; where }
          | Lexer.WHERE ->
              advance st;
              let where = parse_group_body st in
              Ast.Modify { delete; insert = []; where }
          | tok ->
              error st "expected INSERT or WHERE after DELETE template, found %s"
                (Lexer.token_to_string tok)))
  | tok ->
      error st "expected INSERT or DELETE, found %s" (Lexer.token_to_string tok)

let parse_update src =
  let st =
    { toks = Lexer.tokenize src; cur = 0;
      env = Rdf.Namespace.with_defaults (); fresh = 0 }
  in
  parse_prefixes st;
  let rec operations acc =
    let acc = parse_update_operation st :: acc in
    match peek st with
    | Lexer.SEMI ->
        advance st;
        (* Tolerate a trailing ';'. *)
        if peek st = Lexer.EOF then List.rev acc else operations acc
    | Lexer.EOF -> List.rev acc
    | tok -> error st "trailing %s after update operation" (Lexer.token_to_string tok)
  in
  operations []
