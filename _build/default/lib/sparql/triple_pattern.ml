type node = Var of string | Term of Rdf.Term.t

type t = { s : node; p : node; o : node }

let make s p o = { s; p; o }

let node_vars acc = function Var v -> v :: acc | Term _ -> acc

let dedup vars =
  List.rev
    (List.fold_left
       (fun acc v -> if List.mem v acc then acc else v :: acc)
       [] vars)

let vars tp = dedup (List.rev (node_vars (node_vars (node_vars [] tp.s) tp.p) tp.o))

let subject_object_vars tp =
  dedup (List.rev (node_vars (node_vars [] tp.s) tp.o))

let coalescable tp1 tp2 =
  let vs1 = subject_object_vars tp1 in
  let vs2 = subject_object_vars tp2 in
  List.exists (fun v -> List.mem v vs2) vs1

let compare_node n1 n2 =
  match (n1, n2) with
  | Var a, Var b -> String.compare a b
  | Term a, Term b -> Rdf.Term.compare a b
  | Var _, Term _ -> -1
  | Term _, Var _ -> 1

let compare t1 t2 =
  let c = compare_node t1.s t2.s in
  if c <> 0 then c
  else
    let c = compare_node t1.p t2.p in
    if c <> 0 then c else compare_node t1.o t2.o

let equal t1 t2 = compare t1 t2 = 0

let pp_node env fmt = function
  | Var v -> Format.fprintf fmt "?%s" v
  | Term (Rdf.Term.Iri iri) -> Format.pp_print_string fmt (Rdf.Namespace.shrink env iri)
  | Term t -> Rdf.Term.pp fmt t

let pp env fmt tp =
  Format.fprintf fmt "%a %a %a ." (pp_node env) tp.s (pp_node env) tp.p
    (pp_node env) tp.o

let to_string tp =
  Format.asprintf "%a" (pp (Rdf.Namespace.with_defaults ())) tp
