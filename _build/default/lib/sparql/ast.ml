type expr = group Expr.t

and element =
  | Triples of Triple_pattern.t list
  | Group of group
  | Union of group list
  | Optional of group
  | Minus of group
  | Filter of expr
  | Values of values_block

and values_block = {
  vars : string list;
  rows : Rdf.Term.t option list list;
}

and group = element list

type agg_kind = Count | Sum | Avg | Min | Max | Sample

type select_item =
  | Svar of string
  | Aggregate of {
      agg : agg_kind;
      distinct : bool;
      target : string option;
      alias : string;
    }

type select = Star | Projection of string list | Aggregated of select_item list

type form =
  | Select of select
  | Ask
  | Construct of Triple_pattern.t list
  | Describe of describe_target list

and describe_target = Dvar of string | Dterm of Rdf.Term.t

type query = {
  env : Rdf.Namespace.t;
  form : form;
  distinct : bool;
  where : group;
  group_by : string list;
  having : expr option;
  order_by : (string * bool) list;
  limit : int option;
  offset : int option;
}

type update =
  | Insert_data of Rdf.Triple.t list
  | Delete_data of Rdf.Triple.t list
  | Delete_where of group
  | Modify of {
      delete : Triple_pattern.t list;
      insert : Triple_pattern.t list;
      where : group;
    }

let select_query q = match q.form with Select s -> s | _ -> Star

let add_distinct acc vs =
  List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) acc vs

let rec element_vars acc = function
  | Triples tps ->
      List.fold_left (fun acc tp -> add_distinct acc (Triple_pattern.vars tp)) acc tps
  | Group g | Optional g | Minus g -> group_vars_acc acc g
  | Union gs -> List.fold_left group_vars_acc acc gs
  | Filter e -> add_distinct acc (Expr.vars ~pattern_vars:group_vars e)
  | Values { vars; _ } -> add_distinct acc vars

and group_vars_acc acc g = List.fold_left element_vars acc g

and group_vars g = List.rev (group_vars_acc [] g)

let query_vars q =
  match q.form with
  | Select (Projection vs) -> vs
  | Select (Aggregated items) ->
      List.map
        (function Svar v -> v | Aggregate { alias; _ } -> alias)
        items
  | Select Star | Ask | Construct _ | Describe _ -> group_vars q.where

let agg_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Sample -> "SAMPLE"

(* --- EXISTS parameterization ------------------------------------------- *)

let substitute_node lookup = function
  | Triple_pattern.Var v as node -> (
      match lookup v with
      | Some term -> Triple_pattern.Term term
      | None -> node)
  | Triple_pattern.Term _ as node -> node

let substitute_tp lookup (tp : Triple_pattern.t) =
  Triple_pattern.make
    (substitute_node lookup tp.s)
    (substitute_node lookup tp.p)
    (substitute_node lookup tp.o)

let rec substitute_expr lookup (e : expr) : expr =
  match e with
  | Expr.Const _ -> e
  | Expr.Var v -> (
      match lookup v with Some t -> Expr.Const t | None -> e)
  | Expr.Bound v -> (
      (* A substituted variable is definitionally bound. *)
      match lookup v with
      | Some _ ->
          Expr.Const
            (Rdf.Term.typed_literal "true" ~datatype:Rdf.Term.xsd_boolean)
      | None -> e)
  | Expr.Cmp (op, a, b) ->
      Expr.Cmp (op, substitute_expr lookup a, substitute_expr lookup b)
  | Expr.Arith (op, a, b) ->
      Expr.Arith (op, substitute_expr lookup a, substitute_expr lookup b)
  | Expr.Neg a -> Expr.Neg (substitute_expr lookup a)
  | Expr.Not a -> Expr.Not (substitute_expr lookup a)
  | Expr.And (a, b) ->
      Expr.And (substitute_expr lookup a, substitute_expr lookup b)
  | Expr.Or (a, b) ->
      Expr.Or (substitute_expr lookup a, substitute_expr lookup b)
  | Expr.Call (f, args) -> Expr.Call (f, List.map (substitute_expr lookup) args)
  | Expr.Exists g -> Expr.Exists (substitute lookup g)
  | Expr.Not_exists g -> Expr.Not_exists (substitute lookup g)

and substitute lookup (g : group) : group =
  List.map
    (fun element ->
      match element with
      | Triples tps -> Triples (List.map (substitute_tp lookup) tps)
      | Group inner -> Group (substitute lookup inner)
      | Union gs -> Union (List.map (substitute lookup) gs)
      | Optional inner -> Optional (substitute lookup inner)
      | Minus inner -> Minus (substitute lookup inner)
      | Filter e -> Filter (substitute_expr lookup e)
      | Values block -> Values block)
    g

let substitute_group g ~lookup = substitute lookup g

(* --- Printing ----------------------------------------------------------- *)

let pp_term env fmt = function
  | Rdf.Term.Iri iri -> Format.pp_print_string fmt (Rdf.Namespace.shrink env iri)
  | t -> Rdf.Term.pp fmt t

let rec pp_element env fmt = function
  | Triples tps ->
      Format.pp_print_list ~pp_sep:Format.pp_print_space
        (Triple_pattern.pp env) fmt tps
  | Group g -> pp_group env fmt g
  | Union gs ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ UNION@ ")
        (pp_group env) fmt gs
  | Optional g -> Format.fprintf fmt "OPTIONAL %a" (pp_group env) g
  | Minus g -> Format.fprintf fmt "MINUS %a" (pp_group env) g
  | Filter e -> Format.fprintf fmt "FILTER (%a)" (pp_expr env) e
  | Values { vars; rows } ->
      let pp_cell fmt = function
        | Some term -> pp_term env fmt term
        | None -> Format.pp_print_string fmt "UNDEF"
      in
      Format.fprintf fmt "VALUES (%a) {@ %a@ }"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space
           (fun fmt v -> Format.fprintf fmt "?%s" v))
        vars
        (Format.pp_print_list ~pp_sep:Format.pp_print_space
           (fun fmt row ->
             Format.fprintf fmt "(%a)"
               (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_cell)
               row))
        rows

and pp_expr env fmt e = Expr.pp ~pp_pattern:(pp_group env) fmt e

and pp_group env fmt g =
  Format.fprintf fmt "@[<v 2>{@ %a@]@ }"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (pp_element env))
    g

let pp_query fmt q =
  Rdf.Namespace.fold q.env ~init:()
    ~f:(fun ~prefix ~iri () ->
      Format.fprintf fmt "PREFIX %s: <%s>@ " prefix iri);
  let pp_select fmt = function
    | Star -> Format.pp_print_string fmt "*"
    | Projection vs ->
        Format.pp_print_list ~pp_sep:Format.pp_print_space
          (fun fmt v -> Format.fprintf fmt "?%s" v)
          fmt vs
    | Aggregated items ->
        Format.pp_print_list ~pp_sep:Format.pp_print_space
          (fun fmt item ->
            match item with
            | Svar v -> Format.fprintf fmt "?%s" v
            | Aggregate { agg; distinct; target; alias } ->
                Format.fprintf fmt "(%s(%s%s) AS ?%s)" (agg_name agg)
                  (if distinct then "DISTINCT " else "")
                  (match target with Some v -> "?" ^ v | None -> "*")
                  alias)
          fmt items
  in
  let distinct = if q.distinct then "DISTINCT " else "" in
  Format.fprintf fmt "@[<v>";
  (match q.form with
  | Select s -> Format.fprintf fmt "SELECT %s%a WHERE " distinct pp_select s
  | Ask -> Format.fprintf fmt "ASK "
  | Construct template ->
      Format.fprintf fmt "CONSTRUCT {@ %a@ } WHERE "
        (Format.pp_print_list ~pp_sep:Format.pp_print_space
           (Triple_pattern.pp q.env))
        template
  | Describe targets ->
      Format.fprintf fmt "DESCRIBE %a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun fmt ->
           function
           | Dvar v -> Format.fprintf fmt "?%s" v
           | Dterm t -> pp_term q.env fmt t))
        targets;
      Format.fprintf fmt " WHERE ");
  Format.fprintf fmt "%a" (pp_group q.env) q.where;
  (match q.group_by with
  | [] -> ()
  | keys ->
      Format.fprintf fmt "@ GROUP BY %a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space
           (fun fmt v -> Format.fprintf fmt "?%s" v))
        keys);
  Option.iter
    (fun e -> Format.fprintf fmt "@ HAVING (%a)" (pp_expr q.env) e)
    q.having;
  (match q.order_by with
  | [] -> ()
  | keys ->
      Format.fprintf fmt "@ ORDER BY %a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space
           (fun fmt (v, descending) ->
             if descending then Format.fprintf fmt "DESC(?%s)" v
             else Format.fprintf fmt "?%s" v))
        keys);
  Option.iter (fun n -> Format.fprintf fmt "@ LIMIT %d" n) q.limit;
  Option.iter (fun n -> Format.fprintf fmt "@ OFFSET %d" n) q.offset;
  Format.fprintf fmt "@]"

let to_string q = Format.asprintf "%a" pp_query q
