lib/sparql/triple_pattern.ml: Format List Rdf String
