lib/sparql/binding.mli:
