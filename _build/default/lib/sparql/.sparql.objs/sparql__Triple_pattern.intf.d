lib/sparql/triple_pattern.mli: Format Rdf
