lib/sparql/parser.mli: Ast Rdf
