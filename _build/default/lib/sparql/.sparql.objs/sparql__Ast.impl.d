lib/sparql/ast.ml: Expr Format List Option Rdf Triple_pattern
