lib/sparql/lexer.ml: Array Buffer List Printf Rdf String
