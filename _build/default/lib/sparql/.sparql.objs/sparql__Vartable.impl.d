lib/sparql/vartable.ml: Array Hashtbl List Printf
