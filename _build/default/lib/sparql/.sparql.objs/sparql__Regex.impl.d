lib/sparql/regex.ml: Array Char List Printf String
