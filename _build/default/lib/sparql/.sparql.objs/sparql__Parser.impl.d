lib/sparql/parser.ml: Array Ast Expr Lexer List Printf Rdf String Triple_pattern
