lib/sparql/expr.ml: Bool Float Format Hashtbl List Option Rdf Regex String
