lib/sparql/algebra.ml: Ast Expr Format List Option Rdf String Triple_pattern
