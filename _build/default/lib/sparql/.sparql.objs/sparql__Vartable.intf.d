lib/sparql/vartable.mli:
