lib/sparql/algebra.mli: Ast Format Triple_pattern
