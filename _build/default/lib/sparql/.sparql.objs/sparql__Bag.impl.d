lib/sparql/bag.ml: Array Binding Format Hashtbl List Option Vartable
