lib/sparql/binding.ml: Array List
