lib/sparql/regex.mli:
