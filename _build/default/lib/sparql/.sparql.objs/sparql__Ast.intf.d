lib/sparql/ast.mli: Expr Format Rdf Triple_pattern
