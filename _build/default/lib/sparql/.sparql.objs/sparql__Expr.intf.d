lib/sparql/expr.mli: Format Rdf
