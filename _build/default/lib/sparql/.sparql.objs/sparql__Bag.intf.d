lib/sparql/bag.mli: Binding Format Hashtbl Vartable
