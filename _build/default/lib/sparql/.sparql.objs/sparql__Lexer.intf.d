lib/sparql/lexer.mli:
