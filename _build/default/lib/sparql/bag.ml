type t = {
  width : int;
  mutable rows : Binding.t array;
  mutable len : int;
}

exception Limit_exceeded

(* A global row budget: a cheap, engine-wide proxy for the memory and time
   limits of the paper's experiments (base runs out of memory on 13 of 24
   queries). The executor arms it per query; every push of an intermediate
   row consumes one unit. *)
let budget = ref max_int
let total_pushed = ref 0

(* Wall-clock deadline, checked every [deadline_stride] pushes to keep the
   common path cheap. [now] is injected by the executor (the sparql
   library itself stays clock-free). *)
let deadline = ref None
let deadline_clock : (unit -> float) ref = ref (fun () -> 0.)
let deadline_stride = 4096

let set_budget n = budget := n
let unlimited_budget () = budget := max_int

let set_deadline ~now ~at =
  deadline_clock := now;
  deadline := Some at

let clear_deadline () = deadline := None

let reset_push_counter () = total_pushed := 0
let pushed_rows () = !total_pushed

let create ~width = { width; rows = [||]; len = 0 }

let push bag row =
  if !budget <= 0 then raise Limit_exceeded;
  decr budget;
  incr total_pushed;
  (match !deadline with
  | Some at when !total_pushed mod deadline_stride = 0 ->
      if !deadline_clock () > at then raise Limit_exceeded
  | _ -> ());
  if bag.len = Array.length bag.rows then begin
    let capacity = max 8 (2 * bag.len) in
    let fresh = Array.make capacity [||] in
    Array.blit bag.rows 0 fresh 0 bag.len;
    bag.rows <- fresh
  end;
  bag.rows.(bag.len) <- row;
  bag.len <- bag.len + 1

let unit ~width =
  let bag = create ~width in
  push bag (Binding.create ~width);
  bag

let of_rows ~width rows =
  let bag = create ~width in
  List.iter (push bag) rows;
  bag

let width bag = bag.width
let length bag = bag.len
let is_empty bag = bag.len = 0

let get bag i =
  if i < 0 || i >= bag.len then invalid_arg "Bag.get: index out of range";
  bag.rows.(i)

let iter bag ~f =
  for i = 0 to bag.len - 1 do
    f bag.rows.(i)
  done

let fold bag ~init ~f =
  let acc = ref init in
  iter bag ~f:(fun row -> acc := f !acc row);
  !acc

let to_list bag = List.rev (fold bag ~init:[] ~f:(fun acc row -> row :: acc))

let bound_columns bag =
  let seen = Array.make bag.width false in
  iter bag ~f:(fun row ->
      for col = 0 to bag.width - 1 do
        if Binding.is_bound row col then seen.(col) <- true
      done);
  let acc = ref [] in
  for col = bag.width - 1 downto 0 do
    if seen.(col) then acc := col :: !acc
  done;
  !acc

let universal_columns bag =
  if bag.len = 0 then []
  else begin
    let all = Array.make bag.width true in
    iter bag ~f:(fun row ->
        for col = 0 to bag.width - 1 do
          if not (Binding.is_bound row col) then all.(col) <- false
        done);
    let acc = ref [] in
    for col = bag.width - 1 downto 0 do
      if all.(col) then acc := col :: !acc
    done;
    !acc
  end

let distinct_values bag ~col =
  let values = Hashtbl.create 64 in
  iter bag ~f:(fun row ->
      if Binding.is_bound row col then Hashtbl.replace values row.(col) ());
  values

let shared_columns b1 b2 =
  let c1 = bound_columns b1 and c2 = bound_columns b2 in
  List.filter (fun col -> List.mem col c2) c1

(* A hash partition of [bag] on [cols]: rows with all [cols] bound go into
   buckets; rows missing some key column go into [wild] and must be checked
   by scan. *)
type partition = {
  buckets : (int, Binding.t list ref) Hashtbl.t;
  mutable wild : Binding.t list;
  cols : int list;
}

let partition bag cols =
  let part = { buckets = Hashtbl.create (max 16 bag.len); wild = []; cols } in
  iter bag ~f:(fun row ->
      if Binding.all_bound row cols then begin
        let key = Binding.hash_on row cols in
        match Hashtbl.find_opt part.buckets key with
        | Some bucket -> bucket := row :: !bucket
        | None -> Hashtbl.add part.buckets key (ref [ row ])
      end
      else part.wild <- row :: part.wild);
  part

(* All rows of the partition compatible with [row]. *)
let compatible_rows part row =
  let from_buckets =
    if Binding.all_bound row part.cols then
      match Hashtbl.find_opt part.buckets (Binding.hash_on row part.cols) with
      | Some bucket ->
          List.filter
            (fun other ->
              Binding.equal_on row other part.cols
              && Binding.compatible row other)
            !bucket
      | None -> []
    else
      (* A probe row missing key columns can match any bucket: scan all. *)
      Hashtbl.fold
        (fun _ bucket acc ->
          List.rev_append
            (List.filter (Binding.compatible row) !bucket)
            acc)
        part.buckets []
  in
  let from_wild = List.filter (Binding.compatible row) part.wild in
  List.rev_append from_wild from_buckets

let join b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.join: width mismatch";
  let result = create ~width:b1.width in
  (* Build on the smaller side; probing preserves Ω1-major order only up to
     bag equality, which is all the semantics requires. *)
  let build, probe = if b1.len <= b2.len then (b1, b2) else (b2, b1) in
  let part = partition build (shared_columns b1 b2) in
  iter probe ~f:(fun row ->
      List.iter
        (fun other -> push result (Binding.merge row other))
        (compatible_rows part row));
  result

let union b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.union: width mismatch";
  let result = create ~width:b1.width in
  iter b1 ~f:(push result);
  iter b2 ~f:(push result);
  result

let minus b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.minus: width mismatch";
  let result = create ~width:b1.width in
  let part = partition b2 (shared_columns b1 b2) in
  iter b1 ~f:(fun row ->
      match compatible_rows part row with
      | [] -> push result row
      | _ :: _ -> ());
  result

(* SPARQL 1.1 MINUS: μ1 is removed only by a compatible μ2 with at least
   one *shared bound* variable (disjoint-domain mappings do not exclude —
   the subtlety distinguishing MINUS from the Section 3 ∖ operator). *)
let sparql_minus b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.sparql_minus: width mismatch";
  let result = create ~width:b1.width in
  let part = partition b2 (shared_columns b1 b2) in
  let overlapping r1 r2 =
    let n = Array.length r1 in
    let rec go i =
      i < n
      && ((r1.(i) <> Binding.unbound && r2.(i) <> Binding.unbound) || go (i + 1))
    in
    go 0
  in
  iter b1 ~f:(fun row ->
      let excluded =
        List.exists (overlapping row) (compatible_rows part row)
      in
      if not excluded then push result row);
  result

(* Stable sort by the given (column, descending) keys; unbound sorts
   before any bound value (as in SPARQL's ORDER BY). *)
let sort bag ~keys ~compare_ids =
  let rows = Array.init bag.len (fun i -> bag.rows.(i)) in
  let compare_rows r1 r2 =
    let rec go = function
      | [] -> 0
      | (col, descending) :: rest ->
          let v1 = r1.(col) and v2 = r2.(col) in
          let c =
            match (v1 = Binding.unbound, v2 = Binding.unbound) with
            | true, true -> 0
            | true, false -> -1
            | false, true -> 1
            | false, false -> compare_ids v1 v2
          in
          let c = if descending then -c else c in
          if c <> 0 then c else go rest
    in
    go keys
  in
  Array.stable_sort compare_rows rows;
  let result = create ~width:bag.width in
  Array.iter (push result) rows;
  result

let semijoin b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.semijoin: width mismatch";
  let result = create ~width:b1.width in
  let part = partition b2 (shared_columns b1 b2) in
  iter b1 ~f:(fun row ->
      match compatible_rows part row with
      | [] -> ()
      | _ :: _ -> push result row);
  result

let left_outer_join b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.left_outer_join: width mismatch";
  let result = create ~width:b1.width in
  let part = partition b2 (shared_columns b1 b2) in
  iter b1 ~f:(fun row ->
      match compatible_rows part row with
      | [] -> push result row
      | matches ->
          List.iter (fun other -> push result (Binding.merge row other)) matches);
  result

let filter bag ~f =
  let result = create ~width:bag.width in
  iter bag ~f:(fun row -> if f row then push result row);
  result

let project bag ~cols =
  let result = create ~width:bag.width in
  iter bag ~f:(fun row ->
      let fresh = Binding.create ~width:bag.width in
      List.iter (fun col -> fresh.(col) <- row.(col)) cols;
      push result fresh);
  result

let dedup bag =
  let seen = Hashtbl.create (max 16 bag.len) in
  let result = create ~width:bag.width in
  iter bag ~f:(fun row ->
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.add seen row ();
        push result row
      end);
  result

(* Multiset equality via counting. *)
let equal_as_bags b1 b2 =
  b1.width = b2.width && b1.len = b2.len
  &&
  let counts = Hashtbl.create (max 16 b1.len) in
  iter b1 ~f:(fun row ->
      let c = Option.value (Hashtbl.find_opt counts row) ~default:0 in
      Hashtbl.replace counts row (c + 1));
  try
    iter b2 ~f:(fun row ->
        match Hashtbl.find_opt counts row with
        | Some c when c > 0 -> Hashtbl.replace counts row (c - 1)
        | _ -> raise Exit);
    true
  with Exit -> false

let pp table fmt bag =
  Format.fprintf fmt "@[<v>";
  iter bag ~f:(fun row ->
      Format.fprintf fmt "{";
      let first = ref true in
      Array.iteri
        (fun col v ->
          if v <> Binding.unbound then begin
            if not !first then Format.fprintf fmt ", ";
            first := false;
            Format.fprintf fmt "?%s=%d" (Vartable.name table col) v
          end)
        row;
      Format.fprintf fmt "}@ ");
  Format.fprintf fmt "@]"
