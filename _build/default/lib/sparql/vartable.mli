(** Per-query variable numbering: maps variable names to dense column
    indexes so that mappings can be flat int arrays. *)

type t

val create : unit -> t

(** [of_list names] numbers [names] in order. *)
val of_list : string list -> t

(** [id table name] is the column of [name], registering it if new. *)
val id : t -> string -> int

(** [find table name] is the column of [name] if registered. *)
val find : t -> string -> int option

(** [name table col] is the variable name at column [col]. *)
val name : t -> int -> string

(** [size table] is the number of registered variables. *)
val size : t -> int

val names : t -> string list
