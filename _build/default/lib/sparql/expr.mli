(** FILTER expressions: comparisons, boolean connectives, arithmetic and
    the common SPARQL built-ins, evaluated with SPARQL's error algebra
    (errors propagate; [&&]/[||] recover when one operand decides the
    result; a row whose filter errors is rejected).

    The type is parameterized over ['pattern] so that [EXISTS { ... }] /
    [NOT EXISTS { ... }] can carry a group graph pattern without a module
    cycle — {!Ast} instantiates ['pattern] with its own group type and
    evaluators supply the [~exists] callback. *)

type 'pattern t =
  | Const of Rdf.Term.t
  | Var of string
  | Bound of string
  | Cmp of cmp * 'pattern t * 'pattern t
  | Arith of arith * 'pattern t * 'pattern t
  | Neg of 'pattern t  (** unary minus *)
  | Not of 'pattern t
  | And of 'pattern t * 'pattern t
  | Or of 'pattern t * 'pattern t
  | Call of builtin * 'pattern t list
  | Exists of 'pattern
  | Not_exists of 'pattern

and cmp = Ceq | Cneq | Clt | Cgt | Cle | Cge

and arith = Add | Subtract | Multiply | Divide

and builtin =
  | B_str  (** lexical form of a term *)
  | B_lang  (** language tag ("" when none) *)
  | B_datatype  (** datatype IRI of a literal *)
  | B_is_iri
  | B_is_literal
  | B_is_blank
  | B_same_term  (** identity, no value coercion *)
  | B_regex  (** regex(text, pattern [, flags]); flag "i" supported *)
  | B_strlen
  | B_ucase
  | B_lcase
  | B_contains
  | B_strstarts
  | B_strends
  | B_abs

(** [builtin_name b] — the surface syntax name ("regex", "isIRI", ...). *)
val builtin_name : builtin -> string

(** [builtin_of_name name] — case-insensitive lookup ("isuri" is accepted
    for [B_is_iri]). *)
val builtin_of_name : string -> builtin option

(** [arity b] — [(min, max)] argument count. *)
val arity : builtin -> int * int

(** {1 Analysis} *)

(** [vars ~pattern_vars e] — distinct variables, first-use order;
    [pattern_vars] extracts the variables of an EXISTS pattern. *)
val vars : pattern_vars:('pattern -> string list) -> 'pattern t -> string list

(** {1 Evaluation} *)

exception Type_error

type value =
  | Vterm of Rdf.Term.t
  | Vbool of bool
  | Vnum of float
  | Vstr of string

(** [eval_value ~lookup ~exists e] evaluates to a {!value}; raises
    {!Type_error} on type errors (including unbound variables outside
    [bound]/[EXISTS]). *)
val eval_value :
  lookup:(string -> Rdf.Term.t option) ->
  exists:('pattern -> bool) ->
  'pattern t ->
  value

(** [eval ~lookup ~exists e] — the filter decision for one row: the
    effective boolean value of [e], with errors counting as rejection
    (after SPARQL's error-recovering [&&]/[||]). *)
val eval :
  lookup:(string -> Rdf.Term.t option) ->
  exists:('pattern -> bool) ->
  'pattern t ->
  bool

(** [pp ~pp_pattern fmt e] — SPARQL concrete syntax. *)
val pp :
  pp_pattern:(Format.formatter -> 'pattern -> unit) ->
  Format.formatter ->
  'pattern t ->
  unit
