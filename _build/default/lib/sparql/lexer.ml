type token =
  | SELECT
  | DISTINCT
  | WHERE
  | PREFIX
  | UNION
  | OPTIONAL
  | FILTER
  | BOUND
  | LIMIT
  | OFFSET
  | MINUS_KW
  | VALUES
  | UNDEF
  | EXISTS
  | NOT_KW
  | ORDER
  | BY
  | ASC
  | DESC
  | ASK
  | CONSTRUCT
  | DESCRIBE
  | GROUP
  | HAVING
  | AS
  | COUNT
  | SUM
  | AVG
  | MIN_KW
  | MAX_KW
  | SAMPLE
  | INSERT
  | DELETE
  | DATA
  | IDENT of string  (* bare word: builtin function name *)
  | PLUS_SYM
  | MINUS_SYM
  | SLASH
  | PIPE
  | CARET
  | KW_A
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | DOT
  | SEMI
  | COMMA
  | STAR
  | VAR of string
  | IRIREF of string
  | QNAME of string
  | STRING of string
  | LANGTAG of string
  | DTYPE_SEP
  | INT of string
  | DECIMAL of string
  | EQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | BANG
  | ANDAND
  | OROR
  | EOF

exception Lex_error of { line : int; message : string }

type ltoken = { tok : token; line : int }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Lex_error { line; message })) fmt

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'

let is_var_char c = is_alpha c || is_digit c || c = '_'

(* Local and prefix name characters; '.' is handled separately because a
   trailing dot terminates the statement rather than the name. *)
let is_name_char c = is_alpha c || is_digit c || c = '_' || c = '-' || c = '%'

let keyword_of_word w =
  match String.lowercase_ascii w with
  | "select" -> Some SELECT
  | "distinct" -> Some DISTINCT
  | "where" -> Some WHERE
  | "prefix" -> Some PREFIX
  | "union" -> Some UNION
  | "optional" -> Some OPTIONAL
  | "filter" -> Some FILTER
  | "bound" -> Some BOUND
  | "limit" -> Some LIMIT
  | "offset" -> Some OFFSET
  | "minus" -> Some MINUS_KW
  | "values" -> Some VALUES
  | "undef" -> Some UNDEF
  | "exists" -> Some EXISTS
  | "not" -> Some NOT_KW
  | "order" -> Some ORDER
  | "by" -> Some BY
  | "asc" -> Some ASC
  | "desc" -> Some DESC
  | "ask" -> Some ASK
  | "construct" -> Some CONSTRUCT
  | "describe" -> Some DESCRIBE
  | "group" -> Some GROUP
  | "having" -> Some HAVING
  | "as" -> Some AS
  | "count" -> Some COUNT
  | "sum" -> Some SUM
  | "avg" -> Some AVG
  | "min" -> Some MIN_KW
  | "max" -> Some MAX_KW
  | "sample" -> Some SAMPLE
  | "insert" -> Some INSERT
  | "delete" -> Some DELETE
  | "data" -> Some DATA
  | "a" -> Some KW_A
  | _ -> None

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let push tok = toks := { tok; line = !line } :: !toks in
  let peek i = if !pos + i < n then Some src.[!pos + i] else None in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  let read_delimited stop =
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then error !line "unterminated token (expected %C)" stop
      else
        let c = src.[!pos] in
        if c = stop then incr pos
        else if c = '\\' then begin
          Buffer.add_char buf '\\';
          incr pos;
          if !pos >= n then error !line "dangling backslash";
          Buffer.add_char buf src.[!pos];
          incr pos;
          go ()
        end
        else begin
          if c = '\n' then incr line;
          Buffer.add_char buf c;
          incr pos;
          go ()
        end
    in
    go ();
    Buffer.contents buf
  in
  (* Reads a name that may contain interior dots but not a trailing dot. *)
  let read_dotted_name () =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek 0 with
      | Some c when is_name_char c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
      | Some '.' -> (
          (* Interior dot only if followed by a name character. *)
          match peek 1 with
          | Some c' when is_name_char c' || c' = '.' ->
              Buffer.add_char buf '.';
              incr pos;
              go ()
          | _ -> ())
      | _ -> ()
    in
    go ();
    Buffer.contents buf
  in
  while !pos < n do
    let c = src.[!pos] in
    match c with
    | ' ' | '\t' | '\r' -> incr pos
    | '\n' ->
        incr line;
        incr pos
    | '#' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | '{' -> incr pos; push LBRACE
    | '}' -> incr pos; push RBRACE
    | '(' -> incr pos; push LPAREN
    | ')' -> incr pos; push RPAREN
    | '.' -> incr pos; push DOT
    | ';' -> incr pos; push SEMI
    | ',' -> incr pos; push COMMA
    | '*' -> incr pos; push STAR
    | '=' -> incr pos; push EQ
    | '!' ->
        if peek 1 = Some '=' then begin pos := !pos + 2; push NEQ end
        else begin incr pos; push BANG end
    | '<' -> (
        (* '<' starts an IRI in term position and a comparison in FILTERs;
           an IRI never contains whitespace, so sniff ahead. *)
        if peek 1 = Some '=' then begin pos := !pos + 2; push LE end
        else
          let rec find_gt i =
            if !pos + i >= n then None
            else
              match src.[!pos + i] with
              | '>' -> Some i
              | ' ' | '\t' | '\n' | '\r' -> None
              | _ -> find_gt (i + 1)
          in
          match find_gt 1 with
          | Some _ ->
              incr pos;
              push (IRIREF (read_delimited '>'))
          | None ->
              incr pos;
              push LT)
    | '>' ->
        if peek 1 = Some '=' then begin pos := !pos + 2; push GE end
        else begin incr pos; push GT end
    | '&' when peek 1 = Some '&' -> pos := !pos + 2; push ANDAND
    | '|' when peek 1 = Some '|' -> pos := !pos + 2; push OROR
    | '|' -> incr pos; push PIPE
    | '^' when peek 1 <> Some '^' -> incr pos; push CARET
    | '/' -> incr pos; push SLASH
    | '+' when (match peek 1 with Some d -> not (is_digit d) | None -> true) ->
        incr pos; push PLUS_SYM
    | '-' when (match peek 1 with Some d -> not (is_digit d) | None -> true) ->
        incr pos; push MINUS_SYM
    | '?' | '$' ->
        incr pos;
        let name = read_while is_var_char in
        if name = "" then error !line "empty variable name";
        push (VAR name)
    | '"' ->
        incr pos;
        push (STRING (Rdf.Term.unescape_string (read_delimited '"')))
    | '@' ->
        incr pos;
        let tag = read_while (fun c -> is_alpha c || is_digit c || c = '-') in
        if tag = "" then error !line "empty language tag";
        push (LANGTAG tag)
    | '^' when peek 1 = Some '^' -> pos := !pos + 2; push DTYPE_SEP
    | c when is_digit c || ((c = '-' || c = '+') && (match peek 1 with Some d -> is_digit d | None -> false)) ->
        let start = !pos in
        if c = '-' || c = '+' then incr pos;
        let _ = read_while is_digit in
        let is_decimal =
          match (peek 0, peek 1) with
          | Some '.', Some d when is_digit d ->
              incr pos;
              let _ = read_while is_digit in
              true
          | _ -> false
        in
        let text = String.sub src start (!pos - start) in
        push (if is_decimal then DECIMAL text else INT text)
    | c when is_alpha c || c = '_' || c = ':' -> (
        let word = read_dotted_name () in
        match peek 0 with
        | Some ':' ->
            incr pos;
            let local = read_dotted_name () in
            push (QNAME (word ^ ":" ^ local))
        | _ -> (
            match keyword_of_word word with
            | Some kw -> push kw
            | None -> push (IDENT word)))
    | c -> error !line "unexpected character %C" c
  done;
  push EOF;
  Array.of_list (List.rev !toks)

let token_to_string = function
  | SELECT -> "SELECT"
  | DISTINCT -> "DISTINCT"
  | WHERE -> "WHERE"
  | PREFIX -> "PREFIX"
  | UNION -> "UNION"
  | OPTIONAL -> "OPTIONAL"
  | FILTER -> "FILTER"
  | BOUND -> "bound"
  | LIMIT -> "LIMIT"
  | OFFSET -> "OFFSET"
  | MINUS_KW -> "MINUS"
  | VALUES -> "VALUES"
  | UNDEF -> "UNDEF"
  | EXISTS -> "EXISTS"
  | NOT_KW -> "NOT"
  | ORDER -> "ORDER"
  | BY -> "BY"
  | ASC -> "ASC"
  | DESC -> "DESC"
  | ASK -> "ASK"
  | CONSTRUCT -> "CONSTRUCT"
  | DESCRIBE -> "DESCRIBE"
  | GROUP -> "GROUP"
  | HAVING -> "HAVING"
  | AS -> "AS"
  | COUNT -> "COUNT"
  | SUM -> "SUM"
  | AVG -> "AVG"
  | MIN_KW -> "MIN"
  | MAX_KW -> "MAX"
  | SAMPLE -> "SAMPLE"
  | INSERT -> "INSERT"
  | DELETE -> "DELETE"
  | DATA -> "DATA"
  | IDENT name -> name
  | PLUS_SYM -> "+"
  | MINUS_SYM -> "-"
  | SLASH -> "/"
  | PIPE -> "|"
  | CARET -> "^"
  | KW_A -> "a"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | DOT -> "."
  | SEMI -> ";"
  | COMMA -> ","
  | STAR -> "*"
  | VAR v -> "?" ^ v
  | IRIREF iri -> "<" ^ iri ^ ">"
  | QNAME q -> q
  | STRING s -> "\"" ^ s ^ "\""
  | LANGTAG l -> "@" ^ l
  | DTYPE_SEP -> "^^"
  | INT s | DECIMAL s -> s
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | BANG -> "!"
  | ANDAND -> "&&"
  | OROR -> "||"
  | EOF -> "<eof>"
