(** The graph-pattern algebra of Definition 6 (extended with the SPARQL
    1.1 operators MINUS and VALUES), as a binary expression tree.

    This is the representation the SPARQL semantics (Definition 7) is
    defined on; the naive binary-tree evaluator and the semantics oracle
    in the test suite work directly on it, while the optimizer works on
    the BE-tree built from the same surface AST. *)

type t =
  | Unit  (** the empty group: one empty mapping (join identity) *)
  | Triple of Triple_pattern.t
  | And of t * t
  | Union of t * t
  | Optional of t * t  (** left OPTIONAL right *)
  | Minus of t * t  (** left MINUS right (SPARQL 1.1 semantics) *)
  | Filter of Ast.expr * t
  | Values of Ast.values_block  (** inline data leaf *)
  | Group of t  (** an explicit [{ ... }] in the source *)

(** [of_group g] converts a surface group graph pattern, applying the
    left-associativity of OPTIONAL/MINUS and attaching FILTERs to the
    whole enclosing group (SPARQL group semantics). The result is wrapped
    in [Group]. *)
val of_group : Ast.group -> t

(** [of_query q] is [of_group q.where]. *)
val of_query : Ast.query -> t

(** [vars p] lists distinct variables in first-use order. *)
val vars : t -> string list

val pp : Format.formatter -> t -> unit
