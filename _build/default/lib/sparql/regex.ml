exception Syntax_error of string

(* ------------------------------ AST ---------------------------------- *)

type node =
  | Set of bool array  (* 256 entries *)
  | Concat of node list
  | Alt of node list
  | Star of node
  | Plus of node
  | Opt of node
  | Begin_anchor
  | End_anchor
  | Empty

let err msg = raise (Syntax_error msg)

let set_of_pred pred =
  Array.init 256 (fun i -> pred (Char.chr i))

let singleton c = set_of_pred (fun c' -> c' = c)

let digit = set_of_pred (fun c -> c >= '0' && c <= '9')

let word =
  set_of_pred (fun c ->
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
      || (c >= '0' && c <= '9') || c = '_')

let space = set_of_pred (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r')

let negate set = Array.map not set

let union s1 s2 = Array.init 256 (fun i -> s1.(i) || s2.(i))

let any = set_of_pred (fun c -> c <> '\n')

(* ------------------------------ Parser -------------------------------- *)

type cursor = { src : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let escape_set = function
  | 'd' -> digit
  | 'D' -> negate digit
  | 'w' -> word
  | 'W' -> negate word
  | 's' -> space
  | 'S' -> negate space
  | 'n' -> singleton '\n'
  | 't' -> singleton '\t'
  | 'r' -> singleton '\r'
  | ('.' | '\\' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '|' | '^' | '$'
    | '{' | '}' | '-') as c ->
      singleton c
  | c -> err (Printf.sprintf "unsupported escape \\%c" c)

let parse_class cur =
  (* cur.pos is just after '['. *)
  let negated =
    match peek cur with
    | Some '^' ->
        advance cur;
        true
    | _ -> false
  in
  let accumulated = ref (set_of_pred (fun _ -> false)) in
  let add set = accumulated := union !accumulated set in
  let rec go first =
    match peek cur with
    | None -> err "unterminated character class"
    | Some ']' when not first -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> err "dangling backslash in class"
        | Some e ->
            advance cur;
            add (escape_set e);
            go false)
    | Some c -> (
        advance cur;
        (* Range c-x? A '-' just before ']' is a literal. *)
        match (peek cur, cur.pos + 1 < String.length cur.src) with
        | Some '-', true when cur.src.[cur.pos + 1] <> ']' ->
            advance cur;
            let hi =
              match peek cur with
              | Some '\\' -> err "escape not allowed as range bound"
              | Some hi ->
                  advance cur;
                  hi
              | None -> err "unterminated range"
            in
            if Char.code hi < Char.code c then err "inverted range";
            add (set_of_pred (fun x -> x >= c && x <= hi));
            go false
        | _ ->
            add (singleton c);
            go false)
  in
  go true;
  if negated then negate !accumulated else !accumulated

let parse pattern =
  let cur = { src = pattern; pos = 0 } in
  let rec parse_alt () =
    let first = parse_concat () in
    let rec go acc =
      match peek cur with
      | Some '|' ->
          advance cur;
          go (parse_concat () :: acc)
      | _ -> List.rev acc
    in
    match go [ first ] with [ single ] -> single | branches -> Alt branches
  and parse_concat () =
    let rec go acc =
      match peek cur with
      | None | Some '|' | Some ')' -> List.rev acc
      | _ -> go (parse_repeat () :: acc)
    in
    match go [] with
    | [] -> Empty
    | [ single ] -> single
    | nodes -> Concat nodes
  and parse_repeat () =
    let atom = parse_atom () in
    let rec go node =
      match peek cur with
      | Some '*' ->
          advance cur;
          go (Star node)
      | Some '+' ->
          advance cur;
          go (Plus node)
      | Some '?' ->
          advance cur;
          go (Opt node)
      | _ -> node
    in
    go atom
  and parse_atom () =
    match peek cur with
    | None -> err "expected an atom"
    | Some '(' ->
        advance cur;
        let inner = parse_alt () in
        (match peek cur with
        | Some ')' -> advance cur
        | _ -> err "unclosed group");
        inner
    | Some '[' ->
        advance cur;
        Set (parse_class cur)
    | Some '.' ->
        advance cur;
        Set any
    | Some '^' ->
        advance cur;
        Begin_anchor
    | Some '$' ->
        advance cur;
        End_anchor
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> err "dangling backslash"
        | Some e ->
            advance cur;
            Set (escape_set e))
    | Some (('*' | '+' | '?') as c) ->
        err (Printf.sprintf "nothing to repeat before %c" c)
    | Some ')' -> err "unmatched )"
    | Some c ->
        advance cur;
        Set (singleton c)
  in
  let ast = parse_alt () in
  (match peek cur with
  | None -> ()
  | Some c -> err (Printf.sprintf "unexpected %c" c));
  ast

(* ------------------------------ NFA ----------------------------------- *)

type kind =
  | Split of int * int
  | Consume of bool array * int
  | At_begin of int  (* epsilon edge usable only at position 0 *)
  | At_end of int  (* epsilon edge usable only at end of input *)
  | Accept

type t = { states : kind array; start : int }

let case_close set =
  Array.init 256 (fun i ->
      let c = Char.chr i in
      set.(i)
      || set.(Char.code (Char.lowercase_ascii c))
      || set.(Char.code (Char.uppercase_ascii c)))

let compile ?(case_insensitive = false) pattern =
  let ast = parse pattern in
  let states = ref [] in
  let count = ref 0 in
  let add kind =
    states := (kind, !count) :: !states;
    incr count;
    !count - 1
  in
  (* [build node next] returns the entry state for matching [node] and
     continuing at [next]. *)
  let rec build node next =
    match node with
    | Empty -> next
    | Set set ->
        let set = if case_insensitive then case_close set else set in
        add (Consume (set, next))
    | Concat nodes -> List.fold_right (fun node k -> build node k) nodes next
    | Alt branches -> (
        match branches with
        | [] -> next
        | [ single ] -> build single next
        | first :: rest ->
            List.fold_left
              (fun entry branch -> add (Split (entry, build branch next)))
              (build first next) rest)
    | Star inner ->
        (* Reserve the split state, then patch the loop edge. *)
        let split = add (Split (0, 0)) in
        let entry = build inner split in
        states :=
          List.map
            (fun (kind, id) ->
              if id = split then (Split (entry, next), id) else (kind, id))
            !states;
        split
    | Plus inner ->
        let split = add (Split (0, 0)) in
        let entry = build inner split in
        states :=
          List.map
            (fun (kind, id) ->
              if id = split then (Split (entry, next), id) else (kind, id))
            !states;
        entry
    | Opt inner -> add (Split (build inner next, next))
    | Begin_anchor -> add (At_begin next)
    | End_anchor -> add (At_end next)
  in
  let accept = add Accept in
  let start = build ast accept in
  let array = Array.make !count Accept in
  List.iter (fun (kind, id) -> array.(id) <- kind) !states;
  { states = array; start }

(* Breadth-first NFA simulation with "contains" semantics: the start
   closure is re-seeded at every input position. *)
let matches re s =
  let n = String.length s in
  let nstates = Array.length re.states in
  let active = Array.make nstates false in
  let accepted = ref false in
  (* Epsilon closure of [state] at input position [pos]. *)
  let rec close pos state =
    if not active.(state) then begin
      active.(state) <- true;
      match re.states.(state) with
      | Accept -> accepted := true
      | Split (a, b) ->
          close pos a;
          close pos b
      | At_begin next -> if pos = 0 then close pos next
      | At_end next -> if pos = n then close pos next
      | Consume _ -> ()
    end
  in
  close 0 re.start;
  let i = ref 0 in
  while (not !accepted) && !i < n do
    let c = s.[!i] in
    (* States surviving consumption of c. *)
    let survivors = ref [] in
    for state = 0 to nstates - 1 do
      if active.(state) then
        match re.states.(state) with
        | Consume (set, next) when set.(Char.code c) ->
            survivors := next :: !survivors
        | _ -> ()
    done;
    Array.fill active 0 nstates false;
    incr i;
    List.iter (close !i) !survivors;
    (* Contains semantics: a match may also start at position !i. *)
    close !i re.start
  done;
  !accepted
