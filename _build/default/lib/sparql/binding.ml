type t = int array

let unbound = -1

let create ~width = Array.make width unbound

let is_bound row col = row.(col) <> unbound

let dom row =
  let acc = ref [] in
  for col = Array.length row - 1 downto 0 do
    if row.(col) <> unbound then acc := col :: !acc
  done;
  !acc

let compatible r1 r2 =
  let n = Array.length r1 in
  let rec go i =
    if i >= n then true
    else
      let v1 = r1.(i) and v2 = r2.(i) in
      if v1 = unbound || v2 = unbound || v1 = v2 then go (i + 1) else false
  in
  go 0

let merge r1 r2 =
  let n = Array.length r1 in
  Array.init n (fun i -> if r1.(i) <> unbound then r1.(i) else r2.(i))

let equal r1 r2 = r1 = r2

let hash_on row cols =
  List.fold_left (fun acc col -> (acc * 1000003) + row.(col)) 5381 cols

let equal_on r1 r2 cols = List.for_all (fun col -> r1.(col) = r2.(col)) cols

let all_bound row cols = List.for_all (fun col -> row.(col) <> unbound) cols
