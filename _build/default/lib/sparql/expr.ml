type 'pattern t =
  | Const of Rdf.Term.t
  | Var of string
  | Bound of string
  | Cmp of cmp * 'pattern t * 'pattern t
  | Arith of arith * 'pattern t * 'pattern t
  | Neg of 'pattern t
  | Not of 'pattern t
  | And of 'pattern t * 'pattern t
  | Or of 'pattern t * 'pattern t
  | Call of builtin * 'pattern t list
  | Exists of 'pattern
  | Not_exists of 'pattern

and cmp = Ceq | Cneq | Clt | Cgt | Cle | Cge

and arith = Add | Subtract | Multiply | Divide

and builtin =
  | B_str
  | B_lang
  | B_datatype
  | B_is_iri
  | B_is_literal
  | B_is_blank
  | B_same_term
  | B_regex
  | B_strlen
  | B_ucase
  | B_lcase
  | B_contains
  | B_strstarts
  | B_strends
  | B_abs

let builtin_name = function
  | B_str -> "str"
  | B_lang -> "lang"
  | B_datatype -> "datatype"
  | B_is_iri -> "isIRI"
  | B_is_literal -> "isLiteral"
  | B_is_blank -> "isBlank"
  | B_same_term -> "sameTerm"
  | B_regex -> "regex"
  | B_strlen -> "strlen"
  | B_ucase -> "ucase"
  | B_lcase -> "lcase"
  | B_contains -> "contains"
  | B_strstarts -> "strstarts"
  | B_strends -> "strends"
  | B_abs -> "abs"

let builtin_of_name name =
  match String.lowercase_ascii name with
  | "str" -> Some B_str
  | "lang" -> Some B_lang
  | "datatype" -> Some B_datatype
  | "isiri" | "isuri" -> Some B_is_iri
  | "isliteral" -> Some B_is_literal
  | "isblank" -> Some B_is_blank
  | "sameterm" -> Some B_same_term
  | "regex" -> Some B_regex
  | "strlen" -> Some B_strlen
  | "ucase" -> Some B_ucase
  | "lcase" -> Some B_lcase
  | "contains" -> Some B_contains
  | "strstarts" -> Some B_strstarts
  | "strends" -> Some B_strends
  | "abs" -> Some B_abs
  | _ -> None

let arity = function
  | B_str | B_lang | B_datatype | B_is_iri | B_is_literal | B_is_blank
  | B_strlen | B_ucase | B_lcase | B_abs ->
      (1, 1)
  | B_same_term | B_contains | B_strstarts | B_strends -> (2, 2)
  | B_regex -> (2, 3)

(* ------------------------------ Analysis ------------------------------ *)

let add_var acc v = if List.mem v acc then acc else v :: acc

let vars ~pattern_vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var v | Bound v -> add_var acc v
    | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
        go (go acc a) b
    | Neg a | Not a -> go acc a
    | Call (_, args) -> List.fold_left go acc args
    | Exists p | Not_exists p ->
        List.fold_left add_var acc (pattern_vars p)
  in
  List.rev (go [] e)

(* ------------------------------ Evaluation ---------------------------- *)

exception Type_error

type value =
  | Vterm of Rdf.Term.t
  | Vbool of bool
  | Vnum of float
  | Vstr of string

let is_integral f = Float.is_integer f && Float.abs f < 1e15

(* Numeric interpretation of a value, if any. *)
let as_num = function
  | Vnum f -> Some f
  | Vterm (Rdf.Term.Literal { value; kind = Typed dt })
    when dt = Rdf.Term.xsd_integer || dt = Rdf.Term.xsd_double ->
      float_of_string_opt value
  | Vterm _ | Vbool _ | Vstr _ -> None

let num v = match as_num v with Some f -> f | None -> raise Type_error

(* String interpretation: plain/string literals and Vstr. *)
let as_str = function
  | Vstr s -> Some s
  | Vterm (Rdf.Term.Literal { value; kind = Plain }) -> Some value
  | Vterm (Rdf.Term.Literal { value; kind = Lang _ }) -> Some value
  | Vterm (Rdf.Term.Literal { value; kind = Typed dt })
    when dt = Rdf.Term.xsd_string ->
      Some value
  | Vterm _ | Vbool _ | Vnum _ -> None

let str v = match as_str v with Some s -> s | None -> raise Type_error

let term_of_value = function
  | Vterm t -> t
  | Vbool b -> Rdf.Term.typed_literal (string_of_bool b) ~datatype:Rdf.Term.xsd_boolean
  | Vstr s -> Rdf.Term.literal s
  | Vnum f ->
      if is_integral f then Rdf.Term.int_literal (int_of_float f)
      else Rdf.Term.typed_literal (string_of_float f) ~datatype:Rdf.Term.xsd_double

(* SPARQL value comparison: numbers numerically, booleans, strings, then
   falling back to term order for IRIs etc. Ordering comparisons between
   incomparable kinds raise. *)
let compare_values v1 v2 ~ordering =
  match (as_num v1, as_num v2) with
  | Some f1, Some f2 -> Float.compare f1 f2
  | _ -> (
      match (as_str v1, as_str v2) with
      | Some s1, Some s2 -> String.compare s1 s2
      | _ -> (
          match (v1, v2) with
          | Vbool b1, Vbool b2 -> Bool.compare b1 b2
          | _ ->
              if ordering then raise Type_error
              else Rdf.Term.compare (term_of_value v1) (term_of_value v2)))

(* Effective boolean value. *)
let ebv = function
  | Vbool b -> b
  | Vnum f -> f <> 0. && not (Float.is_nan f)
  | Vstr s -> s <> ""
  | Vterm (Rdf.Term.Literal { value; kind = Typed dt })
    when dt = Rdf.Term.xsd_boolean ->
      value = "true" || value = "1"
  | Vterm (Rdf.Term.Literal { value; kind = Typed dt })
    when dt = Rdf.Term.xsd_integer || dt = Rdf.Term.xsd_double -> (
      match float_of_string_opt value with
      | Some f -> f <> 0. && not (Float.is_nan f)
      | None -> raise Type_error)
  | Vterm (Rdf.Term.Literal { value; kind = Plain | Lang _ }) -> value <> ""
  | Vterm _ -> raise Type_error

(* Cached compiled regexes: FILTER regex is re-evaluated per row. *)
let regex_cache : (string * bool, Regex.t) Hashtbl.t = Hashtbl.create 16

let compiled_regex pattern case_insensitive =
  match Hashtbl.find_opt regex_cache (pattern, case_insensitive) with
  | Some re -> re
  | None ->
      let re =
        try Regex.compile ~case_insensitive pattern
        with Regex.Syntax_error _ -> raise Type_error
      in
      Hashtbl.add regex_cache (pattern, case_insensitive) re;
      re

let rec eval_value ~lookup ~exists e =
  let value e = eval_value ~lookup ~exists e in
  match e with
  | Const t -> Vterm t
  | Var v -> (
      match lookup v with Some t -> Vterm t | None -> raise Type_error)
  | Bound v -> Vbool (Option.is_some (lookup v))
  | Cmp (op, a, b) -> (
      let va = value a and vb = value b in
      match op with
      | Ceq -> Vbool (compare_values va vb ~ordering:false = 0)
      | Cneq -> Vbool (compare_values va vb ~ordering:false <> 0)
      | Clt -> Vbool (compare_values va vb ~ordering:true < 0)
      | Cgt -> Vbool (compare_values va vb ~ordering:true > 0)
      | Cle -> Vbool (compare_values va vb ~ordering:true <= 0)
      | Cge -> Vbool (compare_values va vb ~ordering:true >= 0))
  | Arith (op, a, b) -> (
      let fa = num (value a) and fb = num (value b) in
      match op with
      | Add -> Vnum (fa +. fb)
      | Subtract -> Vnum (fa -. fb)
      | Multiply -> Vnum (fa *. fb)
      | Divide -> if fb = 0. then raise Type_error else Vnum (fa /. fb))
  | Neg a -> Vnum (-.num (value a))
  | Not a -> Vbool (not (eval_bool ~lookup ~exists a))
  | And _ | Or _ -> Vbool (eval_bool ~lookup ~exists e)
  | Exists p -> Vbool (exists p)
  | Not_exists p -> Vbool (not (exists p))
  | Call (b, args) -> eval_builtin ~lookup ~exists b args

and eval_builtin ~lookup ~exists b args =
  let value e = eval_value ~lookup ~exists e in
  let one () = match args with [ a ] -> value a | _ -> raise Type_error in
  let two () =
    match args with [ a; b ] -> (value a, value b) | _ -> raise Type_error
  in
  match b with
  | B_str -> (
      match one () with
      | Vterm (Rdf.Term.Iri iri) -> Vstr iri
      | Vterm (Rdf.Term.Literal { value; _ }) -> Vstr value
      | Vterm (Rdf.Term.Bnode _) -> raise Type_error
      | Vstr s -> Vstr s
      | Vnum f -> Vstr (Rdf.Term.to_ntriples (term_of_value (Vnum f)))
      | Vbool b -> Vstr (string_of_bool b))
  | B_lang -> (
      match one () with
      | Vterm (Rdf.Term.Literal { kind = Lang l; _ }) -> Vstr l
      | Vterm (Rdf.Term.Literal _) | Vstr _ -> Vstr ""
      | _ -> raise Type_error)
  | B_datatype -> (
      match one () with
      | Vterm (Rdf.Term.Literal { kind = Typed dt; _ }) ->
          Vterm (Rdf.Term.iri dt)
      | Vterm (Rdf.Term.Literal { kind = Plain; _ }) | Vstr _ ->
          Vterm (Rdf.Term.iri Rdf.Term.xsd_string)
      | Vterm (Rdf.Term.Literal { kind = Lang _; _ }) -> raise Type_error
      | _ -> raise Type_error)
  | B_is_iri -> (
      match one () with
      | Vterm t -> Vbool (Rdf.Term.is_iri t)
      | _ -> Vbool false)
  | B_is_literal -> (
      match one () with
      | Vterm t -> Vbool (Rdf.Term.is_literal t)
      | Vstr _ | Vnum _ | Vbool _ -> Vbool true)
  | B_is_blank -> (
      match one () with
      | Vterm t -> Vbool (Rdf.Term.is_bnode t)
      | _ -> Vbool false)
  | B_same_term ->
      let va, vb = two () in
      Vbool (Rdf.Term.equal (term_of_value va) (term_of_value vb))
  | B_regex -> (
      match args with
      | [ text; pattern ] | [ text; pattern; _ ] ->
          let flags =
            match args with
            | [ _; _; f ] -> str (value f)
            | _ -> ""
          in
          let ci = String.contains flags 'i' in
          let re = compiled_regex (str (value pattern)) ci in
          Vbool (Regex.matches re (str (value text)))
      | _ -> raise Type_error)
  | B_strlen -> Vnum (float_of_int (String.length (str (one ()))))
  | B_ucase -> Vstr (String.uppercase_ascii (str (one ())))
  | B_lcase -> Vstr (String.lowercase_ascii (str (one ())))
  | B_contains ->
      let va, vb = two () in
      let hay = str va and needle = str vb in
      let n = String.length needle and h = String.length hay in
      let rec search i =
        if i + n > h then false
        else String.sub hay i n = needle || search (i + 1)
      in
      Vbool (n = 0 || search 0)
  | B_strstarts ->
      let va, vb = two () in
      let s = str va and prefix = str vb in
      Vbool
        (String.length prefix <= String.length s
        && String.sub s 0 (String.length prefix) = prefix)
  | B_strends ->
      let va, vb = two () in
      let s = str va and suffix = str vb in
      let ls = String.length s and lx = String.length suffix in
      Vbool (lx <= ls && String.sub s (ls - lx) lx = suffix)
  | B_abs -> Vnum (Float.abs (num (one ())))

(* SPARQL's error-recovering logical connectives: a && b is false if
   either is false even when the other errors; a || b is true if either
   is true even when the other errors. *)
and eval_bool ~lookup ~exists e =
  let try_bool e =
    match ebv (eval_value ~lookup ~exists e) with
    | b -> Some b
    | exception Type_error -> None
  in
  match e with
  | And (a, b) -> (
      match (try_bool a, try_bool b) with
      | Some false, _ | _, Some false -> false
      | Some true, Some true -> true
      | _ -> raise Type_error)
  | Or (a, b) -> (
      match (try_bool a, try_bool b) with
      | Some true, _ | _, Some true -> true
      | Some false, Some false -> false
      | _ -> raise Type_error)
  | Not a -> not (eval_bool ~lookup ~exists a)
  | _ -> ebv (eval_value ~lookup ~exists e)

let eval ~lookup ~exists e =
  match eval_bool ~lookup ~exists e with
  | b -> b
  | exception Type_error -> false

(* ------------------------------ Printing ------------------------------ *)

let cmp_name = function
  | Ceq -> "="
  | Cneq -> "!="
  | Clt -> "<"
  | Cgt -> ">"
  | Cle -> "<="
  | Cge -> ">="

let arith_name = function
  | Add -> "+"
  | Subtract -> "-"
  | Multiply -> "*"
  | Divide -> "/"

let rec pp ~pp_pattern fmt e =
  let pp = pp ~pp_pattern in
  match e with
  | Const t -> Rdf.Term.pp fmt t
  | Var v -> Format.fprintf fmt "?%s" v
  | Bound v -> Format.fprintf fmt "bound(?%s)" v
  | Cmp (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp a (cmp_name op) pp b
  | Arith (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (arith_name op) pp b
  | Neg a -> Format.fprintf fmt "(- %a)" pp a
  | Not a -> Format.fprintf fmt "!(%a)" pp a
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp a pp b
  | Call (b, args) ->
      Format.fprintf fmt "%s(%a)" (builtin_name b)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp)
        args
  | Exists p -> Format.fprintf fmt "EXISTS %a" pp_pattern p
  | Not_exists p -> Format.fprintf fmt "NOT EXISTS %a" pp_pattern p
