(** The surface syntax tree produced by the parser.

    A group graph pattern is the *ordered* list of its elements; order
    matters because OPTIONAL and MINUS apply to everything to their left
    in the group (left associativity, Section 3) and because the BE-tree
    (Definition 8) preserves sibling order. *)

(** FILTER expressions instantiated with group graph patterns as the
    EXISTS payload. *)
type expr = group Expr.t

and element =
  | Triples of Triple_pattern.t list
      (** a run of consecutive triple patterns *)
  | Group of group  (** a nested [{ ... }] *)
  | Union of group list  (** [{A} UNION {B} UNION ...]; length >= 2 *)
  | Optional of group  (** [OPTIONAL { ... }] *)
  | Minus of group  (** [MINUS { ... }] (SPARQL 1.1) *)
  | Filter of expr
  | Values of values_block  (** inline data (SPARQL 1.1 VALUES) *)

and values_block = {
  vars : string list;
  rows : Rdf.Term.t option list list;
      (** one inner list per row, [None] = UNDEF; each row has exactly
          [List.length vars] entries *)
}

and group = element list

type agg_kind = Count | Sum | Avg | Min | Max | Sample

type select_item =
  | Svar of string  (** a plain projected variable *)
  | Aggregate of {
      agg : agg_kind;
      distinct : bool;  (** e.g. COUNT(DISTINCT ?x) *)
      target : string option;  (** [None] means counting solutions, i.e. COUNT star *)
      alias : string;  (** the AS variable *)
    }

type select =
  | Star
  | Projection of string list
  | Aggregated of select_item list
      (** SELECT with at least one aggregate; plain [Svar] items double as
          GROUP BY keys *)

(** The four SPARQL query forms. *)
type form =
  | Select of select
  | Ask
  | Construct of Triple_pattern.t list  (** the CONSTRUCT template *)
  | Describe of describe_target list

and describe_target = Dvar of string | Dterm of Rdf.Term.t

type query = {
  env : Rdf.Namespace.t;  (** prefix declarations, preloaded with defaults *)
  form : form;
  distinct : bool;
  where : group;
  group_by : string list;
      (** GROUP BY variables *)
  having : expr option;  (** HAVING constraint over each group *)
  order_by : (string * bool) list;
      (** ORDER BY variables; [true] = descending *)
  limit : int option;
  offset : int option;
}

(** SPARQL 1.1 Update operations (INSERT/DELETE DATA, DELETE WHERE,
    DELETE/INSERT WHERE). Parsed by {!Parser.parse_update}; applied by
    [Sparql_uo.Update_exec]. *)
type update =
  | Insert_data of Rdf.Triple.t list
  | Delete_data of Rdf.Triple.t list
  | Delete_where of group  (** the pattern doubles as the delete template *)
  | Modify of {
      delete : Triple_pattern.t list;  (** [] = INSERT-only *)
      insert : Triple_pattern.t list;  (** [] = DELETE-only *)
      where : group;
    }

(** [select_query q] — [q]'s projection when it is a SELECT; [Star]
    otherwise. *)
val select_query : query -> select

(** [group_vars g] lists the distinct variables of the group, in first-use
    order (including variables mentioned only inside FILTER/EXISTS). *)
val group_vars : group -> string list

(** [query_vars q] is the variables the query projects: the SELECT list,
    or all pattern variables for [SELECT *] and the other forms. *)
val query_vars : query -> string list

(** [substitute_group g ~lookup] replaces every variable bound by
    [lookup] with its term — the parameterization step of EXISTS
    evaluation. *)
val substitute_group :
  group -> lookup:(string -> Rdf.Term.t option) -> group

val pp_expr : Rdf.Namespace.t -> Format.formatter -> expr -> unit

val pp_group : Rdf.Namespace.t -> Format.formatter -> group -> unit

(** [pp_query fmt q] prints the query back as concrete SPARQL syntax
    (used by plan explainers and the parser round-trip tests). *)
val pp_query : Format.formatter -> query -> unit

val to_string : query -> string
