(** Triple patterns (Definition 2): triples whose positions may hold
    variables. *)

type node = Var of string | Term of Rdf.Term.t

type t = { s : node; p : node; o : node }

val make : node -> node -> node -> t

(** [vars tp] is the list of distinct variable names in [tp], in s, p, o
    order. *)
val vars : t -> string list

(** [subject_object_vars tp] is the list of distinct variables at the
    subject or object positions only — the positions that matter for
    coalescability (Definition 3). *)
val subject_object_vars : t -> string list

(** [coalescable tp1 tp2] per Definition 3: true iff the subject/object
    variable sets intersect. *)
val coalescable : t -> t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

(** [pp env fmt tp] prints in SPARQL concrete syntax, shrinking IRIs
    against [env]. *)
val pp : Rdf.Namespace.t -> Format.formatter -> t -> unit

val to_string : t -> string
