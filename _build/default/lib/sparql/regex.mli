(** A small regular-expression engine (Thompson NFA construction with a
    breadth-first simulation — linear time, no backtracking blowups) for
    the SPARQL [regex] built-in.

    Supported syntax, a practical subset of XPath/XSD regular expressions:
    - literal characters, [.] (any character)
    - character classes [[abc]], ranges [[a-z0-9]], negation [[^...]]
    - escapes [\\d \\w \\s] (and their [\\D \\W \\S] negations), [\\.]
      etc. for metacharacters
    - repetition [*], [+], [?]
    - alternation [|] and grouping [(...)]
    - anchors [^] and [$]

    Matching is "contains" semantics, as in SPARQL's [regex]: the pattern
    matches if it matches any substring, unless anchored. *)

type t

exception Syntax_error of string

(** [compile ?case_insensitive pattern] — raises {!Syntax_error} on a
    malformed pattern. *)
val compile : ?case_insensitive:bool -> string -> t

(** [matches re s] — does [re] match somewhere in [s]? *)
val matches : t -> string -> bool
