(** Recursive-descent parser for the SPARQL-UO subset, extended with the
    SPARQL 1.1 features a practical engine needs.

    Grammar:
    {v
    query    := prefixes ( select | ask | construct | describe ) modifiers
    select   := SELECT DISTINCT? ( '*' | var+ | ε ) WHERE? group
    ask      := ASK WHERE? group
    construct:= CONSTRUCT '{' triples '}' WHERE group
    describe := DESCRIBE (var | iri)+ (WHERE group)?
    group    := '{' element* '}'
    element  := triples | group ('UNION' group)* | OPTIONAL group
              | MINUS group | FILTER expr | VALUES values
    values   := var '{' cell* '}' | '(' var* ')' '{' ('(' cell* ')')* '}'
    expr     := full expression grammar: || && comparisons + - * /
                unary !/-, function calls (str, lang, datatype, isIRI,
                isLiteral, isBlank, sameTerm, regex, strlen, ucase,
                lcase, contains, strstarts, strends, abs, bound),
                EXISTS group, NOT EXISTS group
    modifiers:= (ORDER BY (var | ASC(var) | DESC(var))+)? (LIMIT n)?
                (OFFSET n)?   — LIMIT/OFFSET in either order
    v}
    A missing projection list (the paper's "SELECT WHERE") is treated as
    [SELECT *]. *)

exception Parse_error of { line : int; message : string }

(** [parse src] parses a complete query. Prefixes declared in the query
    extend the default namespace environment. *)
val parse : string -> Ast.query

(** [parse_group ?env src] parses a bare group graph pattern ["{ ... }"] —
    convenient for tests and property generators. *)
val parse_group : ?env:Rdf.Namespace.t -> string -> Ast.group

(** [parse_update src] parses a [;]-separated sequence of SPARQL 1.1
    Update operations (INSERT DATA, DELETE DATA, DELETE WHERE,
    DELETE/INSERT ... WHERE), with PREFIX declarations. *)
val parse_update : string -> Ast.update list
