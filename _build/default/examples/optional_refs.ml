(* The paper's Figure 1(b) scenario: fetch a selective set of entities
   along with their owl:sameAs references *where they exist* — entities
   without alternative references must be retained, which is exactly what
   OPTIONAL provides. The selective left side makes both the *inject*
   transformation (Definition 10) and query-time candidate pruning
   (Section 6) effective, because the unselective sameAs pattern never
   needs to be materialized in full.

     dune exec examples/optional_refs.exe
*)

let query =
  {|PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    PREFIX owl:  <http://www.w3.org/2002/07/owl#>
    PREFIX dbo:  <http://dbpedia.org/ontology/>
    PREFIX dbr:  <http://dbpedia.org/resource/>
    SELECT * WHERE {
      ?entity dbo:wikiPageWikiLink dbr:Economic_system .
      ?entity rdfs:label ?label .
      OPTIONAL { ?entity owl:sameAs ?ref . }
    }|}

let () =
  print_endline "Generating a DBpedia-like dataset...";
  let store = Workload.Dbpedia_gen.store Workload.Dbpedia_gen.tiny in
  let stats = Rdf_store.Stats.compute store in
  Printf.printf "  %d triples\n\n" (Rdf_store.Triple_store.size store);
  Printf.printf "%-6s %-10s %-12s %-18s %s\n" "mode" "results" "time (ms)"
    "intermediate rows" "BGPs pruned";
  List.iter
    (fun mode ->
      let report = Sparql_uo.Executor.run ~mode ~stats store query in
      let total_rows, pruned =
        match report.Sparql_uo.Executor.eval_stats with
        | Some s ->
            (s.Sparql_uo.Evaluator.total_rows, s.Sparql_uo.Evaluator.pruned_bgps)
        | None -> (0, 0)
      in
      Printf.printf "%-6s %-10d %-12.2f %-18d %d\n"
        (Sparql_uo.Executor.mode_name mode)
        (Option.value report.Sparql_uo.Executor.result_count ~default:0)
        (report.Sparql_uo.Executor.transform_ms
       +. report.Sparql_uo.Executor.exec_ms)
        total_rows pruned)
    Sparql_uo.Executor.all_modes;
  print_newline ();
  (* Entities without a sameAs reference are retained — the point of
     OPTIONAL. Count both kinds. *)
  let report = Sparql_uo.Executor.run ~stats store query in
  let with_ref, without_ref =
    List.fold_left
      (fun (w, wo) solution ->
        if List.mem_assoc "ref" solution then (w + 1, wo) else (w, wo + 1))
      (0, 0)
      (Sparql_uo.Executor.solutions store report)
  in
  Printf.printf
    "Solutions with an alternative reference: %d; retained without one: %d\n"
    with_ref without_ref
