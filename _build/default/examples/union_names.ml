(* The paper's Figure 1(a) scenario: in DBpedia, a person's name may sit
   under rdfs:label or under foaf:name, so collecting all names of a group
   of entities needs a UNION — and a selective anchor pattern makes the
   *merge* transformation (Definition 9) pay off.

   This example runs the UNION query over the synthetic DBpedia-like
   dataset in all four configurations and shows the plan difference.

     dune exec examples/union_names.exe
*)

let query =
  {|PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX dbo:  <http://dbpedia.org/ontology/>
    PREFIX dbr:  <http://dbpedia.org/resource/>
    SELECT * WHERE {
      ?entity dbo:wikiPageWikiLink dbr:Economic_system .
      { ?entity rdfs:label ?name . } UNION { ?entity foaf:name ?name . }
    }|}

let () =
  print_endline "Generating a DBpedia-like dataset...";
  let store = Workload.Dbpedia_gen.store Workload.Dbpedia_gen.tiny in
  let stats = Rdf_store.Stats.compute store in
  Printf.printf "  %d triples\n\n" (Rdf_store.Triple_store.size store);
  (* Show the plans: base keeps the UNION branches whole; TT merges the
     selective anchor into both branches. *)
  let tt =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.TT ~stats store query
  in
  print_endline "BE-tree before transformation:";
  print_endline (Sparql_uo.Be_tree.to_string tt.Sparql_uo.Executor.tree_before);
  print_endline "\nBE-tree after the merge transformation:";
  print_endline (Sparql_uo.Be_tree.to_string tt.Sparql_uo.Executor.tree_after);
  print_newline ();
  Printf.printf "%-6s %-10s %-12s\n" "mode" "results" "time (ms)";
  List.iter
    (fun mode ->
      let report = Sparql_uo.Executor.run ~mode ~stats store query in
      Printf.printf "%-6s %-10d %-12.2f\n"
        (Sparql_uo.Executor.mode_name mode)
        (Option.value report.Sparql_uo.Executor.result_count ~default:0)
        (report.Sparql_uo.Executor.transform_ms
       +. report.Sparql_uo.Executor.exec_ms))
    Sparql_uo.Executor.all_modes;
  print_newline ();
  (* A taste of the actual answers. *)
  let report = Sparql_uo.Executor.run ~stats store query in
  let shown = ref 0 in
  List.iter
    (fun solution ->
      if !shown < 5 then begin
        incr shown;
        match
          (List.assoc_opt "entity" solution, List.assoc_opt "name" solution)
        with
        | Some (Rdf.Term.Iri entity), Some name ->
            Printf.printf "  %s -> %s\n"
              (Rdf.Namespace.shrink (Rdf.Namespace.with_defaults ()) entity)
              (Rdf.Term.to_ntriples name)
        | _ -> ()
      end)
    (Sparql_uo.Executor.solutions store report)
