examples/optional_refs.mli:
