examples/union_names.ml: List Option Printf Rdf Rdf_store Sparql_uo Workload
