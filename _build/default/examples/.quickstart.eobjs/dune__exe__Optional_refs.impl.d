examples/optional_refs.ml: List Option Printf Rdf_store Sparql_uo Workload
