examples/union_names.mli:
