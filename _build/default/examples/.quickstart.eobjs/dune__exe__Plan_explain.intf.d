examples/plan_explain.mli:
