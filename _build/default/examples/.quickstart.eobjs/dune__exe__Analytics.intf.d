examples/analytics.mli:
