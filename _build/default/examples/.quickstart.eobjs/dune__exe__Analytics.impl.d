examples/analytics.ml: List Option Printf Rdf Rdf_store Sparql_uo Workload
