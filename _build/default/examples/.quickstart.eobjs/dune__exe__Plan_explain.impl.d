examples/plan_explain.ml: Engine List Option Printf Rdf_store Sparql Sparql_uo Workload
