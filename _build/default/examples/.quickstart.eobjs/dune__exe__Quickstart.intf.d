examples/quickstart.mli:
