(* Plan walkthrough: constructs the BE-tree of a mixed UNION + OPTIONAL
   query (the q1.6 shape of the paper's benchmark), shows the cost model's
   view of the available transformations, applies Algorithm 4, and prints
   the before/after trees with their estimated two-level costs.

     dune exec examples/plan_explain.exe
*)

module BT = Sparql_uo.Be_tree

let () =
  print_endline "Generating a small LUBM dataset...";
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let stats = Rdf_store.Stats.compute store in
  Printf.printf "  %d triples\n\n" (Rdf_store.Triple_store.size store);
  let entry = Workload.Queries.get Workload.Queries.Lubm "q1.6" in
  let query = Sparql.Parser.parse entry.Workload.Queries.text in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let env = Engine.Bgp_eval.make ~stats store vartable Engine.Bgp_eval.Wco in
  let tree = BT.of_query query in
  print_endline "== BE-tree as constructed (Definition 8) ==";
  print_endline (BT.to_string tree);
  Printf.printf "\nEstimated two-level cost: %.4g\n\n"
    (Sparql_uo.Cost_model.two_level_cost env tree);
  (* Enumerate the applicable transformations at the top level and their
     delta-costs (Equations 4 and 8). *)
  let n = List.length tree.BT.children in
  print_endline "== Applicable top-level transformations ==";
  for p1 = 0 to n - 1 do
    for target = 0 to n - 1 do
      if Sparql_uo.Transform.can_merge tree ~p1 ~union:target then begin
        let merged = Sparql_uo.Transform.apply_merge tree ~p1 ~union:target in
        Printf.printf "merge  BGP@%d -> UNION@%d : delta-cost %+.4g\n" p1 target
          (Sparql_uo.Cost_model.two_level_cost env merged
         -. Sparql_uo.Cost_model.two_level_cost env tree)
      end;
      if Sparql_uo.Transform.can_inject tree ~p1 ~opt:target then begin
        let injected = Sparql_uo.Transform.apply_inject tree ~p1 ~opt:target in
        Printf.printf "inject BGP@%d -> OPT@%d   : delta-cost %+.4g\n" p1 target
          (Sparql_uo.Cost_model.two_level_cost env injected
         -. Sparql_uo.Cost_model.two_level_cost env tree)
      end
    done
  done;
  print_newline ();
  let transformed = Sparql_uo.Transform.multi_level env tree in
  print_endline "== After Algorithm 4 (greedy cost-driven transformation) ==";
  print_endline (BT.to_string transformed);
  Printf.printf "\nEstimated two-level cost: %.4g\n\n"
    (Sparql_uo.Cost_model.two_level_cost env transformed);
  (* And the observable effect. *)
  Printf.printf "%-6s %-10s %-12s %-14s\n" "mode" "results" "time (ms)"
    "join space";
  List.iter
    (fun mode ->
      let report =
        Sparql_uo.Executor.run_query ~mode ~stats store query
      in
      Printf.printf "%-6s %-10d %-12.2f %-14s\n"
        (Sparql_uo.Executor.mode_name mode)
        (Option.value report.Sparql_uo.Executor.result_count ~default:0)
        (report.Sparql_uo.Executor.transform_ms
       +. report.Sparql_uo.Executor.exec_ms)
        (match report.Sparql_uo.Executor.eval_stats with
        | Some s -> Printf.sprintf "%.3g" s.Sparql_uo.Evaluator.join_space
        | None -> "-"))
    Sparql_uo.Executor.all_modes
