(* Analytics over a generated LUBM dataset: aggregates (COUNT/AVG with
   GROUP BY, HAVING), ORDER BY and LIMIT — the SPARQL 1.1 layer on top of
   the paper's SPARQL-UO optimizer.

     dune exec examples/analytics.exe
*)

let print_rows store report =
  List.iter
    (fun solution ->
      List.iter
        (fun (v, term) ->
          Printf.printf "  ?%s = %s" v
            (match term with
            | Rdf.Term.Iri iri ->
                Rdf.Namespace.shrink (Rdf.Namespace.with_defaults ()) iri
            | t -> Rdf.Term.to_ntriples t))
        solution;
      print_newline ())
    (Sparql_uo.Executor.solutions store report)

let run store title text =
  Printf.printf "== %s ==\n%s\n" title text;
  let report = Sparql_uo.Executor.run store text in
  Printf.printf "-- %d row(s) in %.2f ms --\n"
    (Option.value report.Sparql_uo.Executor.result_count ~default:0)
    report.Sparql_uo.Executor.exec_ms;
  print_rows store report;
  print_newline ()

let () =
  print_endline "Generating a small LUBM dataset...";
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  Printf.printf "  %d triples\n\n" (Rdf_store.Triple_store.size store);
  run store "The five largest departments by student count"
    {|PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?dept (COUNT(?student) AS ?students) WHERE {
  ?student ub:memberOf ?dept .
} GROUP BY ?dept ORDER BY DESC(?students) LIMIT 5|};
  run store "Professors advising more than five students"
    {|PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?prof (COUNT(?student) AS ?advisees) WHERE {
  ?student ub:advisor ?prof .
} GROUP BY ?prof HAVING (?advisees > 5) ORDER BY DESC(?advisees) LIMIT 5|};
  run store "Publication statistics across all authors"
    {|PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT (COUNT(*) AS ?authorships) (COUNT(DISTINCT ?author) AS ?authors)
WHERE { ?pub ub:publicationAuthor ?author . }|};
  (* An ASK and a CONSTRUCT, for good measure. *)
  let ask =
    Sparql_uo.Executor.run store
      {|PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
        ASK { ?x ub:headOf ?d . ?x ub:teacherOf ?c . }|}
  in
  Printf.printf "Does any department head also teach? %s\n\n"
    (match Sparql_uo.Executor.ask ask with
    | Some b -> string_of_bool b
    | None -> "(limit)");
  let construct =
    Sparql_uo.Executor.run store
      {|PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
        CONSTRUCT { ?d <http://example.org/led_by> ?x . }
        WHERE { ?x ub:headOf ?d . } LIMIT 3|}
  in
  print_endline "CONSTRUCTed leadership triples (first departments):";
  List.iteri
    (fun i t -> if i < 3 then print_endline ("  " ^ Rdf.Triple.to_ntriples t))
    (Sparql_uo.Executor.construct store construct)
