(* Quickstart: build a small RDF graph from Turtle, run a SPARQL-UO query
   through the full optimizer stack, and print the solutions.

     dune exec examples/quickstart.exe
*)

let data =
  {|@prefix ub:  <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> .
    @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

    ub:alice a ub:FullProfessor ;
             ub:worksFor ub:cs_department ;
             ub:name "Alice" ;
             ub:emailAddress "alice@cs.example.edu" .

    ub:bob   a ub:FullProfessor ;
             ub:worksFor ub:cs_department ;
             ub:name "Bob" .

    ub:carol ub:headOf ub:cs_department ;
             ub:name "Carol" .

    ub:dave  ub:advisor ub:alice ;
             ub:takesCourse ub:algorithms .

    ub:alice ub:teacherOf ub:algorithms .|}

(* UNION bridges the two ways of being affiliated with the department;
   the OPTIONALs attach email and advisee information where it exists. *)
let query =
  {|PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
    SELECT * WHERE {
      { ?person ub:worksFor ub:cs_department . }
      UNION
      { ?person ub:headOf ub:cs_department . }
      ?person ub:name ?name .
      OPTIONAL { ?person ub:emailAddress ?email . }
      OPTIONAL { ?student ub:advisor ?person .
                 ?person ub:teacherOf ?course .
                 ?student ub:takesCourse ?course . }
    }|}

let () =
  let store = Rdf_store.Triple_store.of_triples (Rdf.Turtle.parse_string data) in
  Printf.printf "Loaded %d triples.\n\n" (Rdf_store.Triple_store.size store);
  let report = Sparql_uo.Executor.run store query in
  Printf.printf "Query returned %d solutions (%.2f ms):\n\n"
    (Option.value report.Sparql_uo.Executor.result_count ~default:0)
    report.Sparql_uo.Executor.exec_ms;
  let env = Rdf.Namespace.with_defaults () in
  List.iter
    (fun solution ->
      List.iter
        (fun (v, term) ->
          Printf.printf "  ?%s = %s" v
            (match term with
            | Rdf.Term.Iri iri -> Rdf.Namespace.shrink env iri
            | t -> Rdf.Term.to_ntriples t))
        solution;
      print_newline ())
    (Sparql_uo.Executor.solutions store report)
