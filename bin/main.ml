(* sparql_uo_cli — command-line front end for the SPARQL-UO engine.

   Subcommands:
     generate   synthesize a LUBM or DBpedia-like dataset as N-Triples
     query      load data, execute a query, print solutions
     explain    show the BE-tree before/after cost-driven transformation
     modes      run a query under base/TT/CP/full and compare
*)

open Cmdliner

(* ---------------- shared options ---------------- *)

let data_arg =
  let doc = "N-Triples file to load." in
  Arg.(value & opt (some string) None & info [ "data" ] ~docv:"FILE.nt" ~doc)

let synth_arg =
  let doc =
    "Generate a synthetic dataset instead of loading one: lubm:tiny, \
     lubm:default, lubm:N (N universities), dbpedia:tiny, dbpedia:default."
  in
  Arg.(value & opt (some string) None & info [ "synth" ] ~docv:"SPEC" ~doc)

let query_file_arg =
  let doc = "File containing the SPARQL query." in
  Arg.(value & opt (some string) None & info [ "query" ] ~docv:"FILE.rq" ~doc)

let query_text_arg =
  let doc = "Inline SPARQL query text." in
  Arg.(value & opt (some string) None & info [ "text" ] ~docv:"SPARQL" ~doc)

let mode_arg =
  let modes =
    [ ("base", Sparql_uo.Executor.Base); ("tt", Sparql_uo.Executor.TT);
      ("cp", Sparql_uo.Executor.CP); ("full", Sparql_uo.Executor.Full) ]
  in
  let doc = "Execution mode: base, tt, cp or full." in
  Arg.(value & opt (enum modes) Sparql_uo.Executor.Full & info [ "mode" ] ~doc)

let engine_arg =
  let engines =
    [ ("wco", Engine.Bgp_eval.Wco); ("hash", Engine.Bgp_eval.Hash_join) ]
  in
  let doc = "BGP engine: wco (gStore-style) or hash (Jena-style)." in
  Arg.(value & opt (enum engines) Engine.Bgp_eval.Wco & info [ "engine" ] ~doc)

let max_print_arg =
  let doc = "Print at most this many solutions." in
  Arg.(value & opt int 20 & info [ "max-print" ] ~doc)

let timeout_arg =
  let doc = "Per-query timeout in milliseconds." in
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~doc)

let budget_arg =
  let doc = "Intermediate-row budget (memory-limit analogue)." in
  Arg.(value & opt (some int) None & info [ "row-budget" ] ~doc)

let compression_arg =
  let modes =
    [ ("delta", Rdf_store.Column.Delta); ("none", Rdf_store.Column.Raw) ]
  in
  let doc =
    "Physical index compression for newly built stores: delta (default) \
     stores the permutation indexes as off-heap delta/varint-compressed \
     blocks; none keeps raw fixed-width off-heap cells (escape hatch for \
     debugging or CPU-bound scans)."
  in
  Arg.(
    value
    & opt (enum modes) Rdf_store.Column.Delta
    & info [ "compression" ] ~docv:"MODE" ~doc)

let domains_arg =
  let doc =
    "Number of domains (OS-level cores) query evaluation may use; 1 \
     (default) is fully serial. With more, WCO extension steps, hash-join \
     probes and independent UNION branches run on a shared domain pool; \
     results are equal as bags, row order may differ."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let morsel_arg =
  let doc =
    "Indices per morsel for the work-stealing scheduler (effective with \
     --domains > 1): smaller morsels tighten early-termination and \
     kill latency and smooth imbalance; larger morsels amortize \
     scheduling overhead."
  in
  Arg.(
    value
    & opt int Engine.Pool.default_morsel_size
    & info [ "morsel-size" ] ~docv:"N" ~doc)

let materialize_arg =
  let doc =
    "Disable the streaming sink pipeline: materialize the full result, \
     then apply ORDER BY/DISTINCT/LIMIT/OFFSET bag-at-a-time (the \
     historical pipeline; results are equal as bags)."
  in
  Arg.(value & flag & info [ "materialize" ] ~doc)

let static_arg =
  let doc =
    "Disable the adaptive execution layer (sideways bitset prefilters into \
     OPTIONAL/MINUS subtrees, observed-cardinality feedback, per-node \
     engine selection): run the paper's static full configuration. Only \
     meaningful with --mode full; the other modes are always static."
  in
  Arg.(value & flag & info [ "static" ] ~doc)

let partial_arg =
  let doc =
    "When the query is killed by a limit, print the rows materialized \
     before the limit fired (marked as partial) instead of discarding \
     them. The exit code still reflects the failure."
  in
  Arg.(value & flag & info [ "partial" ] ~doc)

let repeat_arg =
  let doc =
    "Execute the query N times through one session. The first run \
     prepares the plan (parse, BE-tree, cost-driven transformation, \
     pattern compilation) and caches it; later runs hit the session plan \
     cache, so the summary separates first-run from amortized latency."
  in
  Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)

let data_dir_arg =
  let doc =
    "Durable store directory (write-ahead log + checkpoints). A fresh or \
     empty directory is initialized — seeded from --data/--synth when \
     given, empty otherwise. An existing directory is recovered by \
     replaying the committed prefix of its log over the last checkpoint \
     (--data/--synth must then be omitted). Commits are logged before \
     they publish and honor --sync. Exit code 24 means the directory \
     needs operator intervention (corrupt checkpoint, orphaned log)."
  in
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

let sync_arg =
  let parse s =
    match s with
    | "never" -> Ok Rdf_store.Wal.Never
    | "every-commit" -> Ok Rdf_store.Wal.Every_commit
    | "interval" -> Ok (Rdf_store.Wal.Interval 0.05)
    | _ -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "interval" -> (
            let ms = String.sub s (i + 1) (String.length s - i - 1) in
            match float_of_string_opt ms with
            | Some ms when ms >= 0. -> Ok (Rdf_store.Wal.Interval (ms /. 1000.))
            | _ -> Error (`Msg (Printf.sprintf "bad sync interval %S" ms)))
        | _ -> Error (`Msg (Printf.sprintf "unknown sync policy %S" s)))
  in
  let print ppf = function
    | Rdf_store.Wal.Never -> Format.pp_print_string ppf "never"
    | Rdf_store.Wal.Every_commit -> Format.pp_print_string ppf "every-commit"
    | Rdf_store.Wal.Interval s -> Format.fprintf ppf "interval:%g" (s *. 1000.)
  in
  let doc =
    "Log sync policy for --data-dir: every-commit (default; fsync — group \
     commit — before each commit returns), interval[:MS] (fsync when MS \
     milliseconds passed since the last, default 50), or never (flush to \
     the OS only)."
  in
  Arg.(
    value
    & opt (conv (parse, print)) Rdf_store.Wal.Every_commit
    & info [ "sync" ] ~docv:"POLICY" ~doc)

(* ---------------- helpers ---------------- *)

(* Synthetic datasets are streamed ([of_iter]) rather than materialized:
   at the default LUBM scale the triple list would rival the store. *)
let parse_synth spec =
  let lubm config = Ok (fun f -> Workload.Lubm.iter_triples config ~f) in
  match String.split_on_char ':' spec with
  | [ "lubm"; "tiny" ] -> lubm Workload.Lubm.tiny
  | [ "lubm"; "default" ] -> lubm Workload.Lubm.default
  | [ "lubm"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> lubm (Workload.Lubm.scaled n)
      | _ -> Error (Printf.sprintf "bad university count %S" n))
  | [ "dbpedia"; "tiny" ] ->
      Ok
        (fun f ->
          List.iter f (Workload.Dbpedia_gen.generate Workload.Dbpedia_gen.tiny))
  | [ "dbpedia"; "default" ] ->
      Ok
        (fun f ->
          List.iter f
            (Workload.Dbpedia_gen.generate Workload.Dbpedia_gen.default))
  | _ -> Error (Printf.sprintf "unknown synth spec %S" spec)

(* Snapshot files are recognized by their magic bytes. *)
let is_snapshot path =
  match In_channel.with_open_bin path (fun ic -> really_input_string ic 4) with
  | "SPUO" -> true
  | _ -> false
  | exception End_of_file -> false

let load_store data synth =
  match (data, synth) with
  | Some path, None ->
      if not (Sys.file_exists path) then
        Error (Printf.sprintf "no such file: %s" path)
      else if is_snapshot path then Ok (Rdf_store.Snapshot.load path)
      else Ok (Rdf_store.Triple_store.load_ntriples path)
  | None, Some spec ->
      Result.map
        (fun produce -> Rdf_store.Triple_store.of_iter produce)
        (parse_synth spec)
  | Some _, Some _ -> Error "--data and --synth are mutually exclusive"
  | None, None -> Error "one of --data or --synth is required"

let load_query file text =
  match (file, text) with
  | Some path, None ->
      if Sys.file_exists path then Ok (In_channel.with_open_text path In_channel.input_all)
      else Error (Printf.sprintf "no such file: %s" path)
  | None, Some text -> Ok text
  | Some _, Some _ -> Error "--query and --text are mutually exclusive"
  | None, None -> Error "one of --query or --text is required"

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

let print_triples triples =
  List.iter (fun t -> print_endline (Rdf.Triple.to_ntriples t)) triples

(* One exit code per failure-taxonomy case, so scripts (and the CI
   governance smoke test) can tell them apart without parsing output. *)
let exit_code_of_failure = function
  | Sparql_uo.Executor.Out_of_budget -> 20
  | Sparql_uo.Executor.Timeout -> 21
  | Sparql_uo.Executor.Cancelled -> 22
  | Sparql_uo.Executor.Injected_fault _ -> 23

(* Exit 24: the durable directory cannot be recovered without operator
   intervention — distinct from the query-failure codes above and from
   ordinary torn-tail truncation (which recovery handles silently). *)
let or_die_unrecoverable f =
  try f ()
  with Rdf_store.Wal.Unrecoverable msg ->
    prerr_endline ("unrecoverable: " ^ msg);
    exit 24

(* Open (or seed) a durable session. --data/--synth describe the initial
   contents, so they are only meaningful when the directory is being
   initialized; on a recovered directory they are rejected rather than
   silently ignored. *)
let open_durable ~policy ~data ~synth dir =
  let initialized =
    Sys.file_exists dir && Sys.is_directory dir
    && Array.exists
         (fun f ->
           String.starts_with ~prefix:"checkpoint." f
           || String.starts_with ~prefix:"wal." f)
         (Sys.readdir dir)
  in
  if initialized && (data <> None || synth <> None) then
    or_die
      (Error
         "--data/--synth seed a fresh --data-dir; this one is already \
          initialized (query it, or point at a new directory)");
  let init =
    if initialized || (data = None && synth = None) then None
    else Some (fun () -> or_die (load_store data synth))
  in
  let session, recovery =
    or_die_unrecoverable (fun () ->
        Sparql_uo.Session.open_dir ~policy ?init dir)
  in
  if recovery.Rdf_store.Wal.initialized then
    Printf.printf "initialized %s (%d triples)\n" dir
      (Rdf_store.Snapshot.size (Sparql_uo.Session.snapshot session))
  else
    Printf.printf
      "recovered %s: checkpoint %d + %d txn(s) (%d op(s)) replayed in %.2f \
       ms%s\n"
      dir recovery.Rdf_store.Wal.checkpoint_seq
      recovery.Rdf_store.Wal.replayed_txns recovery.Rdf_store.Wal.replayed_ops
      recovery.Rdf_store.Wal.recovery_ms
      (if recovery.Rdf_store.Wal.truncated_bytes > 0 then
         Printf.sprintf " (%d torn byte(s) truncated)"
           recovery.Rdf_store.Wal.truncated_bytes
       else "");
  session

let die_killed report =
  match report.Sparql_uo.Executor.failure with
  | Some f ->
      Printf.printf "-- killed: %s --\n" (Sparql_uo.Executor.failure_name f);
      Stdlib.exit (exit_code_of_failure f)
  | None -> ()

(* A partial run still exits with its failure's code, after the rows. *)
let exit_partial report =
  match report.Sparql_uo.Executor.partial with
  | Some f ->
      Printf.printf "-- partial result: killed by %s --\n"
        (Sparql_uo.Executor.failure_name f);
      Stdlib.exit (exit_code_of_failure f)
  | None -> ()

let print_solutions store report max_print =
  match report.Sparql_uo.Executor.result_count with
  | None -> die_killed report
  | Some n ->
      (match report.Sparql_uo.Executor.partial with
      | Some f ->
          Printf.printf "partial: %d row(s) before %s\n" n
            (Sparql_uo.Executor.failure_name f)
      | None ->
          Printf.printf "%d solution(s) in %.2f ms (+ %.2f ms planning)\n" n
            report.Sparql_uo.Executor.exec_ms
            report.Sparql_uo.Executor.transform_ms);
      let printed = ref 0 in
      List.iter
        (fun solution ->
          if !printed < max_print then begin
            incr printed;
            let env = Rdf.Namespace.with_defaults () in
            let cell (v, term) =
              Printf.sprintf "?%s = %s" v
                (match term with
                | Rdf.Term.Iri iri -> Rdf.Namespace.shrink env iri
                | t -> Rdf.Term.to_ntriples t)
            in
            print_endline (String.concat "  " (List.map cell solution))
          end)
        (Sparql_uo.Executor.solutions store report);
      if n > max_print then Printf.printf "... (%d more)\n" (n - max_print);
      (match report.Sparql_uo.Executor.partial with
      | Some f -> Stdlib.exit (exit_code_of_failure f)
      | None -> ())

(* ---------------- generate ---------------- *)

let generate_cmd =
  let out_arg =
    let doc = "Output N-Triples file." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let synth_req =
    let doc = "Dataset spec (see --synth of the query command)." in
    Arg.(required & opt (some string) None & info [ "synth" ] ~docv:"SPEC" ~doc)
  in
  let run spec out =
    let produce = or_die (parse_synth spec) in
    let n = ref 0 in
    Out_channel.with_open_text out (fun oc ->
        produce (fun t ->
            Out_channel.output_string oc (Rdf.Triple.to_ntriples t);
            Out_channel.output_char oc '\n';
            incr n));
    Printf.printf "wrote %d triples to %s\n" !n out
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a benchmark dataset as N-Triples")
    Term.(const run $ synth_req $ out_arg)

(* ---------------- query ---------------- *)

(* Run [text] [repeat] times through one session; returns the last report
   and prints a first-vs-amortized summary when repeating. *)
let session_runs session ~mode ~engine ~domains ~materialize ~adaptive
    ?timeout_ms ?row_budget ?partial ~repeat text =
  if repeat < 1 then or_die (Error "--repeat must be at least 1");
  let run_once () =
    let t0 = Unix.gettimeofday () in
    let report =
      Sparql_uo.Session.run ~mode ~engine ~domains
        ~streaming:(not materialize) ~adaptive ?timeout_ms ?row_budget ?partial
        session text
    in
    ((Unix.gettimeofday () -. t0) *. 1000., report)
  in
  let first_ms, first_report = run_once () in
  let rest = List.init (repeat - 1) (fun _ -> run_once ()) in
  let report =
    match List.rev rest with (_, last) :: _ -> last | [] -> first_report
  in
  if repeat > 1 then begin
    let amortized =
      List.fold_left (fun acc (ms, _) -> acc +. ms) 0. rest
      /. float_of_int (List.length rest)
    in
    Printf.printf
      "repeat=%d: first run %.2f ms, amortized %.2f ms/run (plan cache \
       hits=%d misses=%d, store epoch=%d)\n"
      repeat first_ms amortized
      (Sparql_uo.Session.hits session)
      (Sparql_uo.Session.misses session)
      (Sparql_uo.Session.epoch session)
  end;
  report

(* Apply store-construction knobs: the compression default consulted by
   every build path, and — with domains > 1 — the shared pool as the
   bulk loader's parallel runner so index builds fan out too. *)
let setup_build ~compression ~domains =
  Rdf_store.Column.set_default_mode compression;
  if domains > 1 then
    Option.iter Engine.Pool.install_bulk_runner
      (Engine.Pool.ensure ~num_domains:domains)

let query_cmd =
  let run data synth data_dir sync qfile qtext mode engine max_print timeout_ms
      row_budget domains morsel materialize static partial repeat compression =
    Engine.Pool.set_morsel_size morsel;
    setup_build ~compression ~domains;
    let text = or_die (load_query qfile qtext) in
    let session =
      match data_dir with
      | Some dir -> open_durable ~policy:sync ~data ~synth dir
      | None -> Sparql_uo.Session.create (or_die (load_store data synth))
    in
    let store = Sparql_uo.Session.store session in
    let report =
      session_runs session ~mode ~engine ~domains ~materialize
        ~adaptive:(not static) ?timeout_ms ?row_budget ~partial ~repeat text
    in
    match report.Sparql_uo.Executor.query.Sparql.Ast.form with
    | Sparql.Ast.Select _ -> print_solutions store report max_print
    | Sparql.Ast.Ask -> (
        match Sparql_uo.Executor.ask report with
        | Some answer -> print_endline (string_of_bool answer)
        | None -> die_killed report)
    | Sparql.Ast.Construct _ ->
        die_killed report;
        print_triples (Sparql_uo.Executor.construct store report);
        exit_partial report
    | Sparql.Ast.Describe _ ->
        die_killed report;
        print_triples (Sparql_uo.Executor.describe store report);
        exit_partial report
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Execute a SPARQL query (SELECT, ASK, CONSTRUCT or DESCRIBE)")
    Term.(
      const run $ data_arg $ synth_arg $ data_dir_arg $ sync_arg
      $ query_file_arg $ query_text_arg $ mode_arg $ engine_arg $ max_print_arg
      $ timeout_arg $ budget_arg $ domains_arg $ morsel_arg $ materialize_arg
      $ static_arg $ partial_arg $ repeat_arg $ compression_arg)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let run data synth qfile qtext mode engine static repeat =
    let store = or_die (load_store data synth) in
    let text = or_die (load_query qfile qtext) in
    let session = Sparql_uo.Session.create store in
    let report =
      session_runs session ~mode ~engine ~domains:1 ~materialize:false
        ~adaptive:(not static) ~repeat text
    in
    print_string (Sparql_uo.Executor.explain report)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the BE-tree before and after cost-driven transformation \
             (with --repeat N, the Nth run's plan-cache hit/miss provenance; \
             in adaptive full mode, per-node estimated vs actual rows and \
             chosen engine)")
    Term.(
      const run $ data_arg $ synth_arg $ query_file_arg $ query_text_arg
      $ mode_arg $ engine_arg $ static_arg $ repeat_arg)

(* ---------------- modes ---------------- *)

let modes_cmd =
  let run data synth qfile qtext engine timeout_ms row_budget domains morsel
      materialize static compression =
    Engine.Pool.set_morsel_size morsel;
    setup_build ~compression ~domains;
    let store = or_die (load_store data synth) in
    let text = or_die (load_query qfile qtext) in
    (* One session across the four modes: statistics are computed once and
       each mode gets its own plan-cache entry. *)
    let session = Sparql_uo.Session.create store in
    Printf.printf "%-6s %-10s %-12s %-12s\n" "mode" "results" "plan (ms)"
      "exec (ms)";
    List.iter
      (fun mode ->
        let report =
          Sparql_uo.Session.run ~mode ~engine ~domains
            ~streaming:(not materialize) ~adaptive:(not static) ?timeout_ms
            ?row_budget session text
        in
        Printf.printf "%-6s %-10s %-12.2f %-12.2f\n"
          (Sparql_uo.Executor.mode_name mode)
          (match
             (report.Sparql_uo.Executor.result_count,
              report.Sparql_uo.Executor.failure)
           with
          | Some n, _ -> string_of_int n
          | None, Some f -> Sparql_uo.Executor.failure_name f
          | None, None -> "none")
          report.Sparql_uo.Executor.transform_ms
          report.Sparql_uo.Executor.exec_ms)
      Sparql_uo.Executor.all_modes
  in
  Cmd.v
    (Cmd.info "modes" ~doc:"Compare base/TT/CP/full on one query")
    Term.(
      const run $ data_arg $ synth_arg $ query_file_arg $ query_text_arg
      $ engine_arg $ timeout_arg $ budget_arg $ domains_arg $ morsel_arg
      $ materialize_arg $ static_arg $ compression_arg)

(* ---------------- update ---------------- *)

let update_cmd =
  let update_text_arg =
    let doc = "Inline SPARQL Update text." in
    Arg.(value & opt (some string) None & info [ "text" ] ~docv:"UPDATE" ~doc)
  in
  let update_file_arg =
    let doc = "File containing the SPARQL Update request." in
    Arg.(value & opt (some string) None & info [ "update" ] ~docv:"FILE.ru" ~doc)
  in
  let out_arg =
    let doc =
      "Where to write the updated store: a .nt file (N-Triples) or \
       anything else (binary snapshot). Required without --data-dir; \
       optional with it (the directory itself is the durable result)."
    in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let write_out store out =
    if Filename.check_suffix out ".nt" then begin
      let acc = ref [] in
      Rdf_store.Triple_store.iter_all store ~f:(fun ~s ~p ~o ->
          acc :=
            Rdf.Triple.make
              (Rdf_store.Triple_store.decode_term store s)
              (Rdf_store.Triple_store.decode_term store p)
              (Rdf_store.Triple_store.decode_term store o)
            :: !acc);
      Rdf.Ntriples.write_file out (List.rev !acc)
    end
    else Rdf_store.Snapshot.save store out
  in
  let run data synth data_dir sync ufile utext out =
    let text = or_die (load_query ufile utext) in
    match data_dir with
    | Some dir ->
        (* Transactional path: one WAL-logged transaction per operation,
           committed against the directory's lineage. *)
        let session = open_durable ~policy:sync ~data ~synth dir in
        Sparql_uo.Update_exec.run_session session text;
        Sparql_uo.Session.sync session;
        (match out with
        | Some out ->
            (* Fold the delta down so the snapshot file describes a full
               base (this doubles as a checkpoint of the directory). *)
            Sparql_uo.Session.checkpoint session;
            write_out (Sparql_uo.Session.store session) out
        | None -> ());
        Printf.printf "updated store: %d triples (durable in %s)\n"
          (Rdf_store.Snapshot.size (Sparql_uo.Session.snapshot session))
          dir
    | None ->
        let out =
          match out with
          | Some out -> out
          | None -> or_die (Error "--out is required without --data-dir")
        in
        let store = or_die (load_store data synth) in
        let store = Sparql_uo.Update_exec.run store text in
        write_out store out;
        Printf.printf "updated store: %d triples -> %s\n"
          (Rdf_store.Triple_store.size store)
          out
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply SPARQL 1.1 Update operations (transactionally and \
             durably with --data-dir) and write the result")
    Term.(
      const run $ data_arg $ synth_arg $ data_dir_arg $ sync_arg
      $ update_file_arg $ update_text_arg $ out_arg)

(* ---------------- churn ---------------- *)

(* Commit a stream of tiny transactions against a durable directory,
   acknowledging each one on stdout only after its commit returned (so
   under --sync every-commit each acknowledged transaction is durable).
   The crash-recovery smoke test SIGKILLs this mid-stream, reopens the
   directory and checks that every acknowledged transaction survived. *)
let churn_cmd =
  let dir_req =
    let doc = "Durable store directory (created/initialized if missing)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR" ~doc)
  in
  let txns_arg =
    let doc = "Number of transactions to commit." in
    Arg.(value & opt int 1000 & info [ "txns" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc = "Triples inserted per transaction." in
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let run dir sync txns batch =
    let session = open_durable ~policy:sync ~data:None ~synth:None dir in
    (* Distinct subjects across invocations of the same directory. *)
    let tag = Unix.getpid () in
    for i = 1 to txns do
      let txn = Sparql_uo.Session.begin_txn session in
      for j = 1 to batch do
        let s =
          Rdf.Term.iri (Printf.sprintf "http://churn/s%d_%d_%d" tag i j)
        in
        let p = Rdf.Term.iri "http://churn/p" in
        let o = Rdf.Term.literal (Printf.sprintf "%d,%d" i j) in
        Rdf_store.Mvcc.insert txn (Rdf.Triple.make s p o)
      done;
      Sparql_uo.Session.commit session txn;
      Printf.printf "committed %d\n" i;
      flush stdout
    done;
    Sparql_uo.Session.sync session;
    Printf.printf "done: %d txn(s) of %d triple(s)\n" txns batch
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Stream small durable transactions into --data-dir, \
             acknowledging each committed transaction on stdout (crash \
             smoke-test driver)")
    Term.(const run $ dir_req $ sync_arg $ txns_arg $ batch_arg)

(* ---------------- snapshot ---------------- *)

let snapshot_cmd =
  let out_arg =
    let doc = "Output snapshot file." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run data synth domains compression out =
    setup_build ~compression ~domains;
    let store = or_die (load_store data synth) in
    Rdf_store.Snapshot.save store out;
    Printf.printf "wrote snapshot of %d triples to %s\n"
      (Rdf_store.Triple_store.size store)
      out
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Write a binary store snapshot (fast reload via --data)")
    Term.(
      const run $ data_arg $ synth_arg $ domains_arg $ compression_arg
      $ out_arg)

(* ---------------- dot ---------------- *)

let dot_cmd =
  let out_arg =
    let doc = "Output .dot file (stdout when omitted)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run data synth qfile qtext mode engine out =
    let store = or_die (load_store data synth) in
    let text = or_die (load_query qfile qtext) in
    let report = Sparql_uo.Executor.run ~mode ~engine store text in
    let dot =
      Sparql_uo.Be_tree_dot.pair_to_dot
        ~before:report.Sparql_uo.Executor.tree_before
        ~after:report.Sparql_uo.Executor.tree_after
    in
    match out with
    | None -> print_string dot
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc dot);
        Printf.printf "wrote %s (render with: dot -Tsvg %s > plan.svg)\n" path
          path
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render the BE-tree plan (before/after) as Graphviz")
    Term.(
      const run $ data_arg $ synth_arg $ query_file_arg $ query_text_arg
      $ mode_arg $ engine_arg $ out_arg)

let () =
  let info =
    Cmd.info "sparql_uo_cli" ~version:"1.0.0"
      ~doc:"SPARQL-UO: efficient execution of SPARQL queries with OPTIONAL \
            and UNION"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; query_cmd; explain_cmd; modes_cmd; snapshot_cmd;
            dot_cmd; update_cmd; churn_cmd ]))
